package iter

import (
	"testing"
	"testing/quick"

	"triolet/internal/domain"
)

// Driver-equivalence property: every consumer must produce bit-identical
// results whether it runs through the block engine or the per-element
// driver. blockDriverEnabled gates every block fast path, so running the
// same random pipeline under both settings compares the two drivers
// directly. Float sums are compared with ==, not a tolerance: the block
// driver is required to preserve the per-element accumulation order, so
// even floating-point folds must agree to the last bit. This test runs
// under -race in CI (the race job tests ./internal/...), which also checks
// that per-traversal kernel generation keeps shared iterators safe.

// runConsumers evaluates every gated consumer over it.
type driverObs struct {
	slice []int64
	sum   int64
	fsum  float64
	count int
	hist  []int64
	split int64
	ok    bool // split observed
}

func observeDrivers(it Iter[int64]) driverObs {
	o := driverObs{
		slice: ToSlice(it),
		sum:   Sum(it),
		count: Count(it),
	}
	o.fsum = Sum(Map(func(v int64) float64 { return float64(v) * 0.1 }, it))
	o.hist = Histogram(64, Map(func(v int64) int { return int(((v % 64) + 64) % 64) }, it))
	if it.CanSplit() {
		n, _ := it.OuterLen()
		for _, r := range domain.BlockPartition(n, 3) {
			o.split += Sum(Split(it, r))
		}
		o.ok = true
	}
	return o
}

func TestBlockDriverMatchesPerElementDriver(t *testing.T) {
	defer func() { blockDriverEnabled = true }()
	prop := func(seed []int16, ops []pipeOp) bool {
		if len(ops) > 6 {
			ops = ops[:6]
		}
		xs := make([]int64, len(seed))
		for i, v := range seed {
			xs[i] = int64(v % 100)
		}
		it := FromSlice(xs)
		ref := xs
		for _, op := range ops {
			it = applyIter(op, it)
			ref = applyRef(op, ref)
			if len(ref) > 50000 {
				return true // skip exploded concatMap cases
			}
		}

		blockDriverEnabled = true
		blocked := observeDrivers(it)
		blockDriverEnabled = false
		scalar := observeDrivers(it)
		blockDriverEnabled = true

		if len(blocked.slice) != len(scalar.slice) {
			t.Logf("ToSlice length %d (block) vs %d (per-element) for ops %+v",
				len(blocked.slice), len(scalar.slice), ops)
			return false
		}
		for i := range scalar.slice {
			if blocked.slice[i] != scalar.slice[i] {
				t.Logf("ToSlice[%d] = %d (block) vs %d (per-element) for ops %+v",
					i, blocked.slice[i], scalar.slice[i], ops)
				return false
			}
		}
		if blocked.sum != scalar.sum || blocked.count != scalar.count {
			t.Logf("sum/count %d/%d vs %d/%d for ops %+v",
				blocked.sum, blocked.count, scalar.sum, scalar.count, ops)
			return false
		}
		if blocked.fsum != scalar.fsum {
			t.Logf("float sum %v (block) vs %v (per-element): accumulation order diverged for ops %+v",
				blocked.fsum, scalar.fsum, ops)
			return false
		}
		for b := range scalar.hist {
			if blocked.hist[b] != scalar.hist[b] {
				t.Logf("hist[%d] = %d vs %d for ops %+v", b, blocked.hist[b], scalar.hist[b], ops)
				return false
			}
		}
		if blocked.ok != scalar.ok || blocked.split != scalar.split {
			t.Logf("split sum %d vs %d for ops %+v", blocked.split, scalar.split, ops)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// The boundary cases quick.Check rarely lands on exactly: lengths around
// blockMin and around BlockSize multiples, where the block driver switches
// on and where its final partial block is cut.
func TestBlockDriverBoundaryLengths(t *testing.T) {
	defer func() { blockDriverEnabled = true }()
	lengths := []int{0, 1, blockMin - 1, blockMin, blockMin + 1,
		BlockSize - 1, BlockSize, BlockSize + 1, 2*BlockSize - 1, 2 * BlockSize, 1000}
	for _, n := range lengths {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(i%97 - 13)
		}
		it := Filter(func(v int64) bool { return v%3 != 0 },
			Map(func(v int64) int64 { return v*5 + 1 }, FromSlice(xs)))

		blockDriverEnabled = true
		gotSlice, gotSum, gotCount := ToSlice(it), Sum(it), Count(it)
		blockDriverEnabled = false
		wantSlice, wantSum, wantCount := ToSlice(it), Sum(it), Count(it)
		blockDriverEnabled = true

		if gotSum != wantSum || gotCount != wantCount || len(gotSlice) != len(wantSlice) {
			t.Fatalf("n=%d: block driver sum/count/len %d/%d/%d vs %d/%d/%d",
				n, gotSum, gotCount, len(gotSlice), wantSum, wantCount, len(wantSlice))
		}
		for i := range wantSlice {
			if gotSlice[i] != wantSlice[i] {
				t.Fatalf("n=%d: element %d: %d vs %d", n, i, gotSlice[i], wantSlice[i])
			}
		}
	}
}
