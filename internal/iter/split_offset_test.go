package iter

import (
	"testing"

	"triolet/internal/domain"
)

// Regression tests for sub-ranges at unaligned bases. The scheduler's
// alignSplit snaps split points to absolute BlockAlign multiples, but
// small seed blocks can still hand consumers ranges whose base is not a
// multiple of BlockSize — and distributed partitions cut wherever the node
// count dictates. The block fast paths must be base-agnostic: a split at
// any offset yields the same elements under the block driver as under the
// per-element driver, and FillRange at an offset base writes exactly the
// right window.

func splitOffsets(n int) []domain.Range {
	bases := []int{0, 1, 77, BlockSize - 1, BlockSize, BlockSize + 1, 2*BlockSize - 1, 513, 1000}
	var out []domain.Range
	for _, lo := range bases {
		if lo > n {
			continue
		}
		for _, hi := range []int{lo, lo + 1, lo + 200, n - 3, n} {
			if hi >= lo && hi <= n {
				out = append(out, domain.Range{Lo: lo, Hi: hi})
			}
		}
	}
	return out
}

func TestSplitAtUnalignedOffsetsDriversAgree(t *testing.T) {
	defer SetBlockDriver(SetBlockDriver(true))
	const n = 2*BlockSize + 77
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(3*i - 1000)
	}
	// Splittable op sequences: flat, nested, and filtered outer kinds.
	pipelines := [][]PipeOp{
		nil,                        // raw slice
		{{Kind: 0, A: 2, B: 5}},    // map
		{{Kind: 1, A: 1, B: 0}},    // filter
		{{Kind: 2, A: 2, B: 0}},    // concatMap
		{{Kind: 0, A: 4, B: 1}, {Kind: 1, A: 2, B: 1}}, // map then filter
	}
	for pi, ops := range pipelines {
		it := BuildPipeline(xs, ops)
		if !it.CanSplit() {
			t.Fatalf("pipeline %d not splittable", pi)
		}
		outer, _ := it.OuterLen()
		for _, r := range splitOffsets(outer) {
			sub := Split(it, r)
			SetBlockDriver(false)
			wantSlice := ToSlice(sub)
			wantSum := Sum(sub)
			wantCount := Count(sub)
			SetBlockDriver(true)
			gotSlice := ToSlice(sub)
			gotSum := Sum(sub)
			gotCount := Count(sub)
			if gotSum != wantSum || gotCount != wantCount {
				t.Fatalf("pipeline %d split %v: block sum/count %d/%d, per-element %d/%d",
					pi, r, gotSum, gotCount, wantSum, wantCount)
			}
			if len(gotSlice) != len(wantSlice) {
				t.Fatalf("pipeline %d split %v: block %d elems, per-element %d",
					pi, r, len(gotSlice), len(wantSlice))
			}
			for i := range wantSlice {
				if gotSlice[i] != wantSlice[i] {
					t.Fatalf("pipeline %d split %v: elem %d = %d, want %d",
						pi, r, i, gotSlice[i], wantSlice[i])
				}
			}
		}
	}
}

// FillRange at an offset base must write exactly dst's window of the outer
// domain, under both drivers, for both the slice-backed and the generator
// fast paths.
func TestFillRangeAtOffsetBases(t *testing.T) {
	defer SetBlockDriver(SetBlockDriver(true))
	const n = 2*BlockSize + 77
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(7*i + 11)
	}
	builds := map[string]Iter[int64]{
		"slice-backed": FromSlice(xs),
		"mapped":       Map(func(v int64) int64 { return 2*v - 3 }, FromSlice(xs)),
		"tabulated":    Map(func(i int) int64 { return int64(i) * int64(i) }, Range(n)),
	}
	for name, it := range builds {
		SetBlockDriver(false)
		ref := ToSlice(it)
		SetBlockDriver(true)
		for _, r := range splitOffsets(n) {
			for _, on := range []bool{false, true} {
				SetBlockDriver(on)
				dst := make([]int64, r.Len())
				FillRange(dst, it, r.Lo)
				for i, v := range dst {
					if v != ref[r.Lo+i] {
						t.Fatalf("%s driver=%v base %d: dst[%d] = %d, want %d",
							name, on, r.Lo, i, v, ref[r.Lo+i])
					}
				}
			}
		}
	}
}
