package iter

// Block-at-a-time execution engine.
//
// The per-element drivers in this package traverse pipelines through one
// interface-closure boundary per stage per element (Idx.At, FIdx.At,
// Cursor): correct, but 6-18x slower than the hand-written loop the paper
// says fusion should match, because every element pays several indirect
// calls and none of the loop bodies are visible to the compiler at once.
//
// The block engine closes most of that gap the way indexed stream fusion
// does it: producers that know their elements live in (or derive from)
// contiguous storage expose a *block kernel* that evaluates BlockSize
// elements per indirect call into a reused buffer, and consumers drive that
// kernel with tight monomorphic loops over the buffer. Two representations
// carry the fast path:
//
//   - back []T on Idx: the indexer is a plain slice view (IdxOf, FromSlice,
//     SliceIdx of a slice). Consumers range over the backing array directly
//     with zero copies and zero per-element calls.
//   - fill on Idx / FIdx: a generator of block kernels. Map, ZipWith, Zip,
//     Range, and Filter compose kernels instead of closure chains, so a
//     map-map-sum pipeline costs one user-function call per stage per
//     element instead of a 5-deep closure chain.
//
// Kernels are generated per traversal (the generator allocates any scratch
// the kernel needs), so a shared iterator value can be traversed from many
// goroutines at once — the property the sched pool relies on when it splits
// a parallel loop into block-aligned ranges (sched.BlockAlign == BlockSize).

// BlockSize is the number of elements a block kernel evaluates per indirect
// call. 256 elements keeps the working set of a two-buffer pipeline stage
// inside L1 for 8-byte elements (2 x 2 KiB) while amortizing the per-block
// call to under 1% of per-element work.
const BlockSize = 256

// blockMin is the traversal length below which consumers stay on the
// per-element driver: a block traversal allocates its kernel and buffer, and
// for short loops (the inner iterators of ConcatMap nests, typically a
// handful of elements) that fixed cost exceeds the per-element savings.
const blockMin = 32

// blockDriverEnabled gates every consumer-side block fast path. The random
// pipeline property test flips it to prove the block driver and the
// per-element driver produce bit-identical results for arbitrary pipelines.
var blockDriverEnabled = true

// fillFn evaluates elements [base, base+len(dst)) of a producer into dst.
type fillFn[T any] func(dst []T, base int)

// cfillFn is the compacting kernel of a filtered producer: it writes the
// surviving elements among indices [base, base+n) to the front of dst
// (len(dst) >= n) and reports how many survived.
type cfillFn[T any] func(dst []T, base, n int) int

// idxFast boxes an indexer's block fast paths behind one pointer so Idx
// itself stays three words. ConcatMap pipelines construct (and copy) an
// inner Iter per outer element; keeping the fast-path state out of line
// means an At-only inner indexer — the common shape of those tiny inner
// loops — costs one nil pointer instead of ten dead words per copy.
type idxFast[T any] struct {
	back []T              // non-nil: At(i) == back[i] (slice-backed)
	fill func() fillFn[T] // optional block-kernel generator

	// Map-chain representation: when mapSrc is non-nil, At(i) equals mapFns
	// applied left-to-right to mapSrc[i]. It survives only while every map
	// stage keeps the element type (detected dynamically in MapIdx), but that
	// covers the hot numeric pipelines, and it lets consumers traverse the
	// whole chain in one pass over the source array — no intermediate buffer
	// and no per-stage block handoff.
	mapSrc []T
	mapFns []func(T) T

	// Fused-reduction representation (see fuse.go). red, when non-nil, is a
	// func(T, int, int) T that folds elements [lo, hi) into an accumulator
	// with straight-line loads from the pipeline's source arrays — no staging
	// buffer, no per-block handoff. mkRed, when non-nil, builds the same
	// kernel for a mapped view of this producer: given g (a func(T) R for a
	// numeric R), it returns a func(R, int, int) R reducing g(At(i)), or nil
	// when R is outside the fused numeric set. Both are type-erased because
	// a generic constructor cannot name the element types of stages built
	// later; construction sites recover them with dynamic type switches.
	red   any
	mkRed func(f any) any
}

// fidxFast boxes a partial indexer's fast paths; see idxFast.
type fidxFast[T any] struct {
	fill func() cfillFn[T] // compacting block-kernel generator

	// Pure-filter representation: when back is non-nil, element i is back[i]
	// and it survives iff pred(back[i]). It holds only while no stage has
	// transformed the values (a plain Filter of a slice-backed producer,
	// possibly filtered again or Split), and it lets Sum/Count/ToSlice run
	// the exact raw-loop shape — test each element where it lies, no
	// compaction pass, no staging buffer.
	back []T
	pred func(T) bool
}

// backing returns the slice view of ix, or nil.
func (ix Idx[T]) backing() []T {
	if ix.fast != nil {
		return ix.fast.back
	}
	return nil
}

// fillGen returns ix's block-kernel generator, or nil.
func (ix Idx[T]) fillGen() func() fillFn[T] {
	if ix.fast != nil {
		return ix.fast.fill
	}
	return nil
}

// chain returns ix's map-chain representation, or (nil, nil).
func (ix Idx[T]) chain() ([]T, []func(T) T) {
	if ix.fast != nil {
		return ix.fast.mapSrc, ix.fast.mapFns
	}
	return nil, nil
}

// reader returns a generator of block-read kernels for ix, or nil when ix
// has no block fast path. Each traversal must generate its own kernel:
// kernels own per-traversal scratch and are not safe for concurrent use,
// while the generator itself is.
func (ix Idx[T]) reader() func() fillFn[T] {
	if back := ix.backing(); back != nil {
		return func() fillFn[T] {
			return func(dst []T, base int) { copy(dst, back[base:]) }
		}
	}
	return ix.fillGen()
}

// blocked reports whether ix has any block fast path.
func (ix Idx[T]) blocked() bool {
	return ix.fast != nil && (ix.fast.back != nil || ix.fast.fill != nil)
}

// ensure grows *buf to at least n elements, reusing it across blocks.
func ensure[T any](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n)
	}
	return (*buf)[:n]
}

// blockLen returns the buffer size for a traversal of n elements.
func blockLen(n int) int {
	if n < BlockSize {
		return n
	}
	return BlockSize
}

// sumSliceFrom is the monomorphic reduction loop every block-driven numeric
// consumer bottoms out in; with a concrete element shape the addition
// compiles to a direct add, matching the hand-written loop. It threads the
// caller's accumulator so each block folds into the running total in element
// order, keeping float results bit-identical to a single per-element fold.
func sumSliceFrom[T Number](acc T, xs []T) T {
	for _, v := range xs {
		acc += v
	}
	return acc
}

// sumChain folds a map chain in one pass over its source array, specialized
// for the common one- and two-stage chains; the fold order matches the
// per-element driver's so float sums stay bit-identical.
func sumChain[T Number](acc T, src []T, fns []func(T) T) T {
	switch len(fns) {
	case 1:
		f0 := fns[0]
		for _, v := range src {
			acc += f0(v)
		}
	case 2:
		f0, f1 := fns[0], fns[1]
		for _, v := range src {
			acc += f1(f0(v))
		}
	default:
		for _, v := range src {
			for _, f := range fns {
				v = f(v)
			}
			acc += v
		}
	}
	return acc
}

// mapChainFill builds the block-kernel generator of a map chain: one pass
// over the source array applying every stage, specialized for the common
// one- and two-stage chains so each element pays exactly one indirect call
// per user function.
func mapChainFill[T any](src []T, fns []func(T) T) func() fillFn[T] {
	return func() fillFn[T] {
		switch len(fns) {
		case 1:
			f0 := fns[0]
			return func(dst []T, base int) {
				for i, v := range src[base : base+len(dst)] {
					dst[i] = f0(v)
				}
			}
		case 2:
			f0, f1 := fns[0], fns[1]
			return func(dst []T, base int) {
				for i, v := range src[base : base+len(dst)] {
					dst[i] = f1(f0(v))
				}
			}
		}
		return func(dst []T, base int) {
			for i, v := range src[base : base+len(dst)] {
				for _, f := range fns {
					v = f(v)
				}
				dst[i] = v
			}
		}
	}
}

// FillRange evaluates outer indices [lo, lo+len(dst)) of a flat (KIdxFlat)
// iterator into dst, block by block so composed kernels keep their scratch
// at BlockSize. It is the in-place builder BuildSliceLocal and the
// distributed array builders use to write each task's range directly into
// shared output storage. Panics if it is not flat.
func FillRange[T any](dst []T, it Iter[T], lo int) {
	if it.kind != KIdxFlat {
		panic("iter: FillRange of non-flat iterator")
	}
	ix := it.idx
	if back := ix.backing(); blockDriverEnabled && back != nil {
		copy(dst, back[lo:])
		return
	}
	if gen := ix.fillGen(); blockDriverEnabled && gen != nil && len(dst) >= blockMin {
		g := gen()
		for off := 0; off < len(dst); off += BlockSize {
			end := off + BlockSize
			if end > len(dst) {
				end = len(dst)
			}
			g(dst[off:end], lo+off)
		}
		return
	}
	for i := range dst {
		dst[i] = ix.At(lo + i)
	}
}
