package iter_test

import (
	"fmt"

	"triolet/internal/domain"
	"triolet/internal/iter"
)

// The paper's running example: summing the positive elements of an array
// in one fused pass. Filter over an indexer keeps the outer loop
// splittable even though each index yields zero or one elements.
func ExampleFilter() {
	xs := []int{1, -2, -4, 1, 3, 4}
	it := iter.Filter(func(x int) bool { return x > 0 }, iter.FromSlice(xs))
	fmt.Println(iter.Sum(it), it.Kind(), it.CanSplit())
	// Output: 9 IdxFilter true
}

// Nested traversal: expanding each element into a variable-length inner
// loop. The result is an indexer of inner iterators (IdxNest), so the
// outer loop still parallelizes.
func ExampleConcatMap() {
	it := iter.ConcatMap(func(x int) iter.Iter[int] { return iter.Range(x) }, iter.Range(4))
	fmt.Println(iter.ToSlice(it), it.Kind())
	// Output: [0 0 1 0 1 2] IdxNest
}

// Zipping two arrays stays a flat, parallelizable indexer; the dot product
// is then a fused reduction.
func ExampleZipWith() {
	xs := []float64{1, 2, 3}
	ys := []float64{4, 5, 6}
	dot := iter.Sum(iter.ZipWith(func(a, b float64) float64 { return a * b },
		iter.FromSlice(xs), iter.FromSlice(ys)))
	fmt.Println(dot)
	// Output: 32
}

// Histogramming consumes any fused pipeline through a mutating collector.
func ExampleHistogram() {
	it := iter.Map(func(x int) int { return x % 3 }, iter.Range(10))
	fmt.Println(iter.Histogram(3, it))
	// Output: [4 3 3]
}

// Scan yields running prefixes; its last element equals the full
// reduction.
func ExampleScan() {
	it := iter.Scan(iter.FromSlice([]int{1, 2, 3, 4}), 0, func(a, v int) int { return a + v })
	fmt.Println(iter.ToSlice(it))
	// Output: [1 3 6 10]
}

// GroupReduce is reduce-by-key over any iterator shape.
func ExampleGroupReduce() {
	sums := iter.GroupReduce(iter.Range(6),
		func(x int) string {
			if x%2 == 0 {
				return "even"
			}
			return "odd"
		},
		func() int { return 0 },
		func(a, v int) int { return a + v })
	fmt.Println(sums["even"], sums["odd"])
	// Output: 6 9
}

// The paper's two-line matrix-multiply structure: outerproduct of row
// iterators, one dot product per output element.
func ExampleOuterProduct() {
	a := iter.Matrix2[float64]{H: 2, W: 2, Data: []float64{1, 2, 3, 4}}
	id := iter.Matrix2[float64]{H: 2, W: 2, Data: []float64{1, 0, 0, 1}} // I = Iᵀ
	zipped := iter.OuterProduct(iter.MatrixRows(a), iter.MatrixRows(id))
	prod := iter.Map2(func(p iter.Pair[[]float64, []float64]) float64 {
		var acc float64
		for i, x := range p.Fst {
			acc += x * p.Snd[i]
		}
		return acc
	}, zipped)
	fmt.Println(iter.Build(prod).Data)
	// Output: [1 2 3 4]
}

// Splitting a fused pipeline across tasks and recombining partial results
// is what makes the hybrid encoding parallel.
func ExampleSplit() {
	it := iter.Filter(func(x int) bool { return x%2 == 0 }, iter.Range(100))
	n, _ := it.OuterLen()
	total := 0
	for _, r := range domain.BlockPartition(n, 4) {
		total += iter.Sum(iter.Split(it, r))
	}
	fmt.Println(total, total == iter.Sum(it))
	// Output: 2450 true
}
