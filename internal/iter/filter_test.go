package iter

import (
	"testing"
	"testing/quick"

	"triolet/internal/domain"
)

// KIdxFilter-specific behaviour: the simplified partial-indexer form of
// Filter over regular input.

func TestFilterComposesPredicates(t *testing.T) {
	it := Filter(func(x int) bool { return x%3 == 0 },
		Filter(func(x int) bool { return x%2 == 0 }, Range(60)))
	if it.Kind() != KIdxFilter {
		t.Fatalf("kind = %v", it.Kind())
	}
	got := ToSlice(it)
	want := []int{0, 6, 12, 18, 24, 30, 36, 42, 48, 54}
	if !eqSlices(got, want) {
		t.Fatalf("composed filter = %v", got)
	}
}

func TestFilterThenMapShortCircuitsRejected(t *testing.T) {
	// Map over a filtered iterator must not apply f to rejected elements.
	applied := 0
	it := Map(func(x int) int { applied++; return x * 10 },
		Filter(func(x int) bool { return x < 3 }, Range(10)))
	got := ToSlice(it)
	if !eqSlices(got, []int{0, 10, 20}) {
		t.Fatalf("map-after-filter = %v", got)
	}
	if applied != 3 {
		t.Fatalf("f applied %d times, want 3", applied)
	}
}

func TestFilteredToStepRestartable(t *testing.T) {
	it := Filter(func(x int) bool { return x%2 == 1 }, Range(10))
	s := ToStep(it)
	if CountStep(s) != 5 || CountStep(s) != 5 {
		t.Fatal("filtered stepper not restartable")
	}
	got := drain(s)
	if !eqSlices(got, []int{1, 3, 5, 7, 9}) {
		t.Fatalf("filtered step order = %v", got)
	}
}

func TestFilteredSplitBounds(t *testing.T) {
	it := Filter(func(x int) bool { return true }, Range(5))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Split(it, domain.Range{Lo: 2, Hi: 9})
}

func TestFilteredConcatMapSkipsRejected(t *testing.T) {
	expansions := 0
	it := ConcatMap(func(x int) Iter[int] {
		expansions++
		return Range(x)
	}, Filter(func(x int) bool { return x%2 == 0 }, Range(6)))
	if it.Kind() != KIdxNest {
		t.Fatalf("kind = %v", it.Kind())
	}
	if got := Sum(it); got != 0+(0+1)+(0+1+2+3) {
		t.Fatalf("sum = %d", got)
	}
	if expansions != 3 { // only 0, 2, 4 expand
		t.Fatalf("expanded %d times, want 3", expansions)
	}
}

func TestFilteredEarlyTermination(t *testing.T) {
	// Any over a filtered iterator stops at the first surviving hit.
	tested := 0
	it := Filter(func(x int) bool { tested++; return x%7 == 0 }, Range(1000))
	if !Any(func(x int) bool { return x == 14 }, it) {
		t.Fatal("Any missed 14")
	}
	if tested > 15 {
		t.Fatalf("predicate ran %d times, want ≤ 15", tested)
	}
}

// Property: filter's partial-indexer form and the literal slice filter
// agree under arbitrary split points, and allocations stay flat.
func TestFilteredSplitEquivalence(t *testing.T) {
	prop := func(xs []int16, p0 uint8) bool {
		p := int(p0%6) + 1
		it := Filter(func(v int16) bool { return v > 0 }, FromSlice(xs))
		var total int64
		n, ok := it.OuterLen()
		if !ok || n != len(xs) {
			return false
		}
		for _, r := range domain.BlockPartition(n, p) {
			total += Reduce(Split(it, r), int64(0), func(a int64, v int16) int64 { return a + int64(v) })
		}
		var want int64
		for _, v := range xs {
			if v > 0 {
				want += int64(v)
			}
		}
		return total == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFilterAllocationsStayConstant(t *testing.T) {
	// The reason KIdxFilter exists: traversing a fused filter must not
	// allocate per element.
	xs := make([]int64, 10000)
	for i := range xs {
		xs[i] = int64(i)
	}
	it := Filter(func(v int64) bool { return v%2 == 0 },
		Map(func(x int64) int64 { return x * 3 }, FromSlice(xs)))
	allocs := testing.AllocsPerRun(10, func() {
		_ = Sum(it)
	})
	if allocs > 10 {
		t.Fatalf("fused filter-sum allocated %v times per run", allocs)
	}
}
