package iter

import (
	"testing"
	"testing/quick"

	"triolet/internal/domain"
)

func TestHistogramBasic(t *testing.T) {
	bins := Histogram(4, FromSlice([]int{0, 1, 1, 3, 3, 3}))
	want := []int64{1, 2, 0, 3}
	if !eqSlices(bins, want) {
		t.Fatalf("Histogram = %v, want %v", bins, want)
	}
}

func TestHistogramDropsOutOfRange(t *testing.T) {
	bins := Histogram(2, FromSlice([]int{-1, 0, 1, 2, 5}))
	if bins[0] != 1 || bins[1] != 1 {
		t.Fatalf("Histogram = %v", bins)
	}
}

func TestHistogramNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Histogram(-1, Empty[int]())
}

func TestHistogramOverFusedPipeline(t *testing.T) {
	// The cutcp/tpacf pattern: histogram over a filtered nested traversal.
	it := ConcatMap(func(x int) Iter[int] { return Range(x) }, Range(5))
	it = Filter(func(b int) bool { return b != 1 }, it)
	bins := Histogram(4, it)
	// Range(x) for x in 0..4 yields 0;01;012;0123 → counts 0:4,1:3,2:2,3:1,
	// minus the b==1 entries.
	want := []int64{4, 0, 2, 1}
	if !eqSlices(bins, want) {
		t.Fatalf("Histogram = %v, want %v", bins, want)
	}
}

func TestWeightedHistogram(t *testing.T) {
	it := FromSlice([]Bin[float64]{{I: 0, W: 1.5}, {I: 2, W: 2.0}, {I: 0, W: 0.5}, {I: 9, W: 7}})
	bins := WeightedHistogram(3, it)
	if bins[0] != 2.0 || bins[1] != 0 || bins[2] != 2.0 {
		t.Fatalf("WeightedHistogram = %v", bins)
	}
}

func TestWeightedHistogramNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WeightedHistogram(-2, Empty[Bin[float64]]())
}

// Property: histogram over a partitioned input, merged by addition, equals
// the sequential histogram (the two-level reduction invariant).
func TestHistogramPartitionMerge(t *testing.T) {
	prop := func(xs []uint8, p0 uint8) bool {
		vals := make([]int, len(xs))
		for i, x := range xs {
			vals[i] = int(x % 16)
		}
		seq := Histogram(16, FromSlice(vals))
		p := int(p0%5) + 1
		merged := make([]int64, 16)
		it := FromSlice(vals)
		n, _ := it.OuterLen()
		var blocks = make([][]int64, 0, p)
		for _, r := range domain.BlockPartition(n, p) {
			blocks = append(blocks, Histogram(16, Split(it, r)))
		}
		for _, b := range blocks {
			for i, v := range b {
				merged[i] += v
			}
		}
		return eqSlices(merged, seq)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramInto(t *testing.T) {
	bins := make([]int64, 3)
	HistogramInto(bins, FromSlice([]int{0, 2, 2}))
	HistogramInto(bins, FromSlice([]int{1, 2, -5, 8}))
	if !eqSlices(bins, []int64{1, 1, 3}) {
		t.Fatalf("HistogramInto = %v", bins)
	}
}

func TestWeightedHistogramInto(t *testing.T) {
	bins := make([]float32, 2)
	WeightedHistogramInto(bins, FromSlice([]Bin[float32]{{I: 0, W: 1}, {I: 1, W: 2}}))
	WeightedHistogramInto(bins, FromSlice([]Bin[float32]{{I: 1, W: 3}, {I: 7, W: 9}}))
	if bins[0] != 1 || bins[1] != 5 {
		t.Fatalf("WeightedHistogramInto = %v", bins)
	}
}
