package iter

import (
	"testing"
	"testing/quick"

	"triolet/internal/domain"
)

func seqMatrix2(h, w int) Matrix2[int] {
	m := Matrix2[int]{H: h, W: w, Data: make([]int, h*w)}
	for i := range m.Data {
		m.Data[i] = i
	}
	return m
}

func TestFromMatrix2AndBuild(t *testing.T) {
	m := seqMatrix2(3, 4)
	it := FromMatrix2(m)
	if it.Dom() != (domain.Dim2{H: 3, W: 4}) {
		t.Fatalf("Dom = %v", it.Dom())
	}
	if it.At(2, 1) != 9 {
		t.Fatalf("At(2,1) = %d", it.At(2, 1))
	}
	back := Build(it)
	if !eqSlices(back.Data, m.Data) {
		t.Fatalf("Build round-trip = %v", back.Data)
	}
}

func TestArrayRange2(t *testing.T) {
	it := ArrayRange2(domain.Dim2{H: 2, W: 3})
	if it.At(1, 2) != (domain.Ix2{Y: 1, X: 2}) {
		t.Fatalf("ArrayRange2.At = %v", it.At(1, 2))
	}
}

func TestTranspositionViaGather(t *testing.T) {
	// The paper's transposition idiom: [A[x,y] for (y,x) in arrayRange((0,0),(h,w))].
	a := seqMatrix2(2, 3)
	tr := Build(Map2(func(ix domain.Ix2) int {
		return a.At(ix.X, ix.Y) // swap: output (y,x) reads input (x,y)
	}, ArrayRange2(domain.Dim2{H: 3, W: 2})))
	want := []int{0, 3, 1, 4, 2, 5}
	if !eqSlices(tr.Data, want) {
		t.Fatalf("transpose = %v, want %v", tr.Data, want)
	}
}

func TestMap2ZipWith2(t *testing.T) {
	a := FromMatrix2(seqMatrix2(2, 2))
	doubled := Map2(func(x int) int { return 2 * x }, a)
	summed := ZipWith2(func(x, y int) int { return x + y }, a, doubled)
	got := Build(summed)
	if !eqSlices(got.Data, []int{0, 3, 6, 9}) {
		t.Fatalf("ZipWith2 = %v", got.Data)
	}
}

func TestZipWith2Intersection(t *testing.T) {
	a := FromMatrix2(seqMatrix2(2, 5))
	b := FromMatrix2(seqMatrix2(4, 3))
	z := ZipWith2(func(x, y int) int { return x + y }, a, b)
	if z.Dom() != (domain.Dim2{H: 2, W: 3}) {
		t.Fatalf("intersection dom = %v", z.Dom())
	}
}

func TestSliceRect(t *testing.T) {
	m := seqMatrix2(4, 4)
	sub := SliceRect(FromMatrix2(m), domain.Rect{
		Rows: domain.Range{Lo: 1, Hi: 3},
		Cols: domain.Range{Lo: 2, Hi: 4},
	})
	if sub.Dom() != (domain.Dim2{H: 2, W: 2}) {
		t.Fatalf("slice dom = %v", sub.Dom())
	}
	got := Build(sub)
	if !eqSlices(got.Data, []int{6, 7, 10, 11}) {
		t.Fatalf("slice = %v", got.Data)
	}
}

func TestSliceRectOutsidePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SliceRect(FromMatrix2(seqMatrix2(2, 2)), domain.Rect{
		Rows: domain.Range{Lo: 0, Hi: 3},
		Cols: domain.Range{Lo: 0, Hi: 2},
	})
}

func TestLinearize(t *testing.T) {
	m := seqMatrix2(3, 2)
	if got := Sum(Linearize(FromMatrix2(m))); got != 15 {
		t.Fatalf("Linearize sum = %d", got)
	}
	if got := ToSlice(Linearize(FromMatrix2(m))); !eqSlices(got, m.Data) {
		t.Fatalf("Linearize order = %v", got)
	}
}

func TestRowsOf(t *testing.T) {
	m := seqMatrix2(3, 2)
	rows := RowsOf(FromMatrix2(m))
	if n, ok := rows.OuterLen(); !ok || n != 3 {
		t.Fatalf("rows OuterLen = %d,%v", n, ok)
	}
	var sums []int
	Collect(Map(func(r Iter[int]) int { return Sum(r) }, rows)).RunInto(&sums)
	if !eqSlices(sums, []int{1, 5, 9}) {
		t.Fatalf("row sums = %v", sums)
	}
}

func TestOuterProductMatMulStyle(t *testing.T) {
	// The paper's 2-line sgemm inner structure: dot products of rows of A
	// with rows of B^T.
	a := Matrix2[float64]{H: 2, W: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	bt := Matrix2[float64]{H: 2, W: 3, Data: []float64{1, 0, 1, 0, 1, 0}}
	prod := OuterProduct(RowsOf(FromMatrix2(a)), RowsOf(FromMatrix2(bt)))
	if prod.Dom() != (domain.Dim2{H: 2, W: 2}) {
		t.Fatalf("outer dom = %v", prod.Dom())
	}
	c := Build(Map2(func(p Pair[Iter[float64], Iter[float64]]) float64 {
		return Sum(ZipWith(func(x, y float64) float64 { return x * y }, p.Fst, p.Snd))
	}, prod))
	want := []float64{4, 2, 10, 5}
	if !eqSlices(c.Data, want) {
		t.Fatalf("matmul = %v, want %v", c.Data, want)
	}
}

func TestOuterProductRequiresFlat(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OuterProduct(Filter(func(int) bool { return true }, Range(3)), Range(3))
}

func TestReduce2(t *testing.T) {
	m := seqMatrix2(2, 3)
	got := Reduce2(FromMatrix2(m), 0, func(a, v int) int { return a + v })
	if got != 15 {
		t.Fatalf("Reduce2 = %d", got)
	}
}

func TestBuildIntoRects(t *testing.T) {
	// Building rectangle-by-rectangle must equal building whole.
	prop := func(h0, w0, py0, px0 uint8) bool {
		h, w := int(h0%9)+1, int(w0%9)+1
		py, px := int(py0%3)+1, int(px0%3)+1
		it := Map2(func(ix domain.Ix2) int { return ix.Y*100 + ix.X }, ArrayRange2(domain.Dim2{H: h, W: w}))
		whole := Build(it)
		tiled := Matrix2[int]{H: h, W: w, Data: make([]int, h*w)}
		for _, r := range (domain.Dim2{H: h, W: w}).GridPartition(py, px) {
			BuildInto(tiled, it, r)
		}
		return eqSlices(tiled.Data, whole.Data)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPar2Hints(t *testing.T) {
	it := FromMatrix2(seqMatrix2(1, 1))
	if it.Hint() != Sequential {
		t.Fatal("default not sequential")
	}
	if Par2(it).Hint() != ClusterPar || LocalPar2(it).Hint() != NodePar {
		t.Fatal("2-D hint setters wrong")
	}
	if Map2(func(x int) int { return x }, Par2(it)).Hint() != ClusterPar {
		t.Fatal("Map2 dropped hint")
	}
	if Linearize(Par2(it)).Hint() != ClusterPar {
		t.Fatal("Linearize dropped hint")
	}
}
