package iter

import (
	"testing"
	"testing/quick"

	"triolet/internal/domain"
)

func irregular(xs []int) Iter[int] {
	// A representative irregular pipeline: keep positives, then expand
	// each x into [x, x+1).. actually one element per survivor; use
	// ConcatMap to force KIdxNest.
	return ConcatMap(func(x int) Iter[int] {
		if x%2 == 0 {
			return Empty[int]()
		}
		return Single(x)
	}, FromSlice(xs))
}

func TestEnumerateFlat(t *testing.T) {
	it := Enumerate(FromSlice([]string{"a", "b", "c"}))
	if it.Kind() != KIdxFlat {
		t.Fatalf("kind = %v", it.Kind())
	}
	got := ToSlice(it)
	if got[2].Fst != 2 || got[2].Snd != "c" {
		t.Fatalf("Enumerate = %v", got)
	}
	// Hint survives.
	if Enumerate(Par(FromSlice([]int{1}))).Hint() != ClusterPar {
		t.Fatal("Enumerate dropped hint")
	}
}

func TestEnumerateIrregular(t *testing.T) {
	it := Enumerate(irregular([]int{2, 3, 4, 5}))
	if it.Kind() != KStepFlat {
		t.Fatalf("kind = %v", it.Kind())
	}
	got := ToSlice(it)
	want := []Pair[int, int]{{0, 3}, {1, 5}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Enumerate = %v", got)
	}
	// Restartable: consuming twice yields the same numbering.
	again := ToSlice(it)
	if len(again) != 2 || again[1] != want[1] {
		t.Fatalf("second traversal = %v", again)
	}
}

func TestTakeDrop(t *testing.T) {
	it := Range(10)
	if got := ToSlice(Take(3, it)); !eqSlices(got, []int{0, 1, 2}) {
		t.Fatalf("Take = %v", got)
	}
	if Take(3, it).Kind() != KIdxFlat {
		t.Fatal("Take lost flatness")
	}
	if got := ToSlice(Drop(7, it)); !eqSlices(got, []int{7, 8, 9}) {
		t.Fatalf("Drop = %v", got)
	}
	if got := ToSlice(Take(99, it)); len(got) != 10 {
		t.Fatalf("over-Take = %v", got)
	}
	if got := ToSlice(Drop(99, it)); len(got) != 0 {
		t.Fatalf("over-Drop = %v", got)
	}
	// Irregular paths.
	irr := irregular([]int{1, 2, 3, 4, 5})
	if got := ToSlice(Take(2, irr)); !eqSlices(got, []int{1, 3}) {
		t.Fatalf("irregular Take = %v", got)
	}
	if got := ToSlice(Drop(1, irr)); !eqSlices(got, []int{3, 5}) {
		t.Fatalf("irregular Drop = %v", got)
	}
}

func TestTakeDropNegativePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Take(-1, Range(3)) },
		func() { Drop(-1, Range(3)) },
		func() { Chunks(0, Range(3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestChainFlat(t *testing.T) {
	c := Chain(FromSlice([]int{1, 2}), FromSlice([]int{3}))
	if c.Kind() != KIdxFlat {
		t.Fatalf("kind = %v", c.Kind())
	}
	if got := ToSlice(c); !eqSlices(got, []int{1, 2, 3}) {
		t.Fatalf("Chain = %v", got)
	}
	// Chained flats still split correctly across the seam.
	if got := Sum(Split(c, domain.Range{Lo: 1, Hi: 3})); got != 5 {
		t.Fatalf("split across seam = %d", got)
	}
}

func TestChainMixed(t *testing.T) {
	c := Chain(irregular([]int{1, 2}), FromSlice([]int{9}))
	if got := ToSlice(c); !eqSlices(got, []int{1, 9}) {
		t.Fatalf("mixed Chain = %v", got)
	}
	if c.Kind() != KIdxNest {
		t.Fatalf("mixed kind = %v", c.Kind())
	}
}

func TestScan(t *testing.T) {
	got := ToSlice(Scan(FromSlice([]int{1, 2, 3}), 0, func(a, v int) int { return a + v }))
	if !eqSlices(got, []int{1, 3, 6}) {
		t.Fatalf("Scan = %v", got)
	}
	if got := ToSlice(Scan(Empty[int](), 5, func(a, v int) int { return a + v })); len(got) != 0 {
		t.Fatalf("empty Scan = %v", got)
	}
	// Scan over irregular input.
	got = ToSlice(Scan(irregular([]int{1, 2, 3}), 0, func(a, v int) int { return a + v }))
	if !eqSlices(got, []int{1, 4}) {
		t.Fatalf("irregular Scan = %v", got)
	}
}

func TestAnyAllFindShortCircuit(t *testing.T) {
	calls := 0
	it := Map(func(x int) int { calls++; return x }, Range(100))
	if !Any(func(x int) bool { return x == 3 }, it) {
		t.Fatal("Any missed")
	}
	if calls != 4 {
		t.Fatalf("Any evaluated %d elements, want 4", calls)
	}
	calls = 0
	if All(func(x int) bool { return x < 2 }, it) {
		t.Fatal("All wrong")
	}
	if calls != 3 { // 0, 1 pass; 2 fails
		t.Fatalf("All evaluated %d elements, want 3", calls)
	}
	v, ok := Find(func(x int) bool { return x > 50 }, it)
	if !ok || v != 51 {
		t.Fatalf("Find = %d,%v", v, ok)
	}
	if _, ok := Find(func(int) bool { return false }, it); ok {
		t.Fatal("Find found nothing")
	}
}

func TestAnyOverNests(t *testing.T) {
	// Early termination must propagate out of inner loops.
	evaluated := 0
	it := ConcatMap(func(x int) Iter[int] {
		return Map(func(j int) int { evaluated++; return x*10 + j }, Range(3))
	}, Range(5))
	if !Any(func(v int) bool { return v == 11 }, it) {
		t.Fatal("Any missed in nest")
	}
	if evaluated > 6 {
		t.Fatalf("Any evaluated %d nested elements", evaluated)
	}
}

func TestMaxByMinBy(t *testing.T) {
	xs := []string{"ccc", "a", "bb", "dddd", "ee"}
	it := FromSlice(xs)
	v, ok := MaxBy(func(s string) int { return len(s) }, it)
	if !ok || v != "dddd" {
		t.Fatalf("MaxBy = %q,%v", v, ok)
	}
	v, ok = MinBy(func(s string) int { return len(s) }, it)
	if !ok || v != "a" {
		t.Fatalf("MinBy = %q,%v", v, ok)
	}
	if _, ok := MaxBy(func(int) int { return 0 }, Empty[int]()); ok {
		t.Fatal("MaxBy of empty reported ok")
	}
	// Ties keep the earliest.
	v, _ = MaxBy(func(s string) int { return len(s) }, FromSlice([]string{"xx", "yy"}))
	if v != "xx" {
		t.Fatalf("tie = %q", v)
	}
}

func TestGroupReduce(t *testing.T) {
	it := Range(10)
	got := GroupReduce(it,
		func(x int) int { return x % 3 },
		func() int { return 0 },
		func(a, v int) int { return a + v })
	if got[0] != 0+3+6+9 || got[1] != 1+4+7 || got[2] != 2+5+8 {
		t.Fatalf("GroupReduce = %v", got)
	}
	// Works over irregular input too.
	got = GroupReduce(irregular([]int{1, 2, 3, 4, 5}),
		func(x int) int { return x % 2 },
		func() int { return 0 },
		func(a, v int) int { return a + v })
	if got[1] != 9 || len(got) != 1 {
		t.Fatalf("irregular GroupReduce = %v", got)
	}
}

func TestChunks(t *testing.T) {
	it := Chunks(4, Range(10))
	if n, ok := it.OuterLen(); !ok || n != 3 {
		t.Fatalf("chunk count = %d,%v", n, ok)
	}
	var lens []int
	Collect(Map(func(c Iter[int]) int { return Count(c) }, it)).RunInto(&lens)
	if !eqSlices(lens, []int{4, 4, 2}) {
		t.Fatalf("chunk lens = %v", lens)
	}
	if got := Sum(Flatten(it)); got != 45 {
		t.Fatalf("flatten sum = %d", got)
	}
}

func TestChunksRequiresFlat(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Chunks(2, irregular([]int{1}))
}

func TestMean(t *testing.T) {
	m, n := Mean(FromSlice([]float64{1, 2, 3, 4}))
	if m != 2.5 || n != 4 {
		t.Fatalf("Mean = %v,%d", m, n)
	}
	if m, n := Mean(Empty[float64]()); m != 0 || n != 0 {
		t.Fatalf("empty Mean = %v,%d", m, n)
	}
}

// Property: Take(n) ++ Drop(n) == original for flat iterators.
func TestTakeDropPartitionProperty(t *testing.T) {
	prop := func(xs []int16, n0 uint8) bool {
		n := int(n0) % (len(xs) + 1)
		it := FromSlice(xs)
		recombined := ToSlice(Chain(Take(n, it), Drop(n, it)))
		if len(recombined) != len(xs) {
			return false
		}
		for i := range xs {
			if recombined[i] != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the last element of Scan equals Reduce.
func TestScanLastEqualsReduce(t *testing.T) {
	prop := func(xs []int32) bool {
		it := FromSlice(xs)
		w := func(a int64, v int32) int64 { return a*3 + int64(v) }
		scanned := ToSlice(Scan(it, int64(7), w))
		folded := Reduce(it, int64(7), w)
		if len(xs) == 0 {
			return len(scanned) == 0
		}
		return scanned[len(scanned)-1] == folded
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: GroupReduce totals equal the plain Reduce total.
func TestGroupReduceMassConservation(t *testing.T) {
	prop := func(xs []int16) bool {
		it := FromSlice(xs)
		groups := GroupReduce(it,
			func(x int16) int16 { return x % 7 },
			func() int64 { return 0 },
			func(a int64, v int16) int64 { return a + int64(v) })
		var fromGroups int64
		for _, v := range groups {
			fromGroups += v
		}
		total := Reduce(it, int64(0), func(a int64, v int16) int64 { return a + int64(v) })
		return fromGroups == total
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
