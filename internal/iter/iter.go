package iter

import (
	"fmt"

	"triolet/internal/domain"
)

// Kind identifies which constructor built an Iter (paper §3.2's GADT
// constructors). Library functions dispatch on the kind exactly as the
// equations of paper Fig. 2 dispatch on constructors; because the kind is
// known when an iterator is constructed, each operation composes concrete
// loop code rather than leaving an interpretive layer — the Go analog of
// Triolet's constructor-aware inlining.
type Kind uint8

const (
	// KIdxFlat is an indexer of values: a regular, parallelizable loop.
	KIdxFlat Kind = iota
	// KStepFlat is a stepper of values: a sequential variable-length loop.
	KStepFlat
	// KIdxNest is an indexer of inner iterators: a loop nest whose outer
	// loop is regular and parallelizable while inner loops may be
	// irregular. Filter and ConcatMap over regular input produce this.
	KIdxNest
	// KStepNest is a stepper of inner iterators: a fully sequential nest.
	KStepNest
	// KIdxFilter is a flat indexer with a fused rejection test: index i
	// yields zero or one elements. Semantically it is the IdxNest of
	// zero-or-one-element steppers that paper Fig. 2's filter equation
	// constructs — KIdxFilter is the simplified form Triolet's optimizer
	// reduces that construction to, kept as an explicit constructor here
	// because Go has no compile-time stage to erase the per-element
	// stepper allocations. It remains splittable: indices are not
	// reassigned (paper §3.2's key invariant).
	KIdxFilter
)

func (k Kind) String() string {
	switch k {
	case KIdxFlat:
		return "IdxFlat"
	case KStepFlat:
		return "StepFlat"
	case KIdxNest:
		return "IdxNest"
	case KStepNest:
		return "StepNest"
	case KIdxFilter:
		return "IdxFilter"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ParHint records how the user asked a loop to be parallelized (paper
// §3.4). Loops are sequential by default; Par requests distributed + thread
// parallelism, LocalPar thread parallelism within one node.
type ParHint uint8

const (
	// Sequential executes on the calling goroutine.
	Sequential ParHint = iota
	// NodePar parallelizes across cores of the local node only (localpar).
	NodePar
	// ClusterPar parallelizes across nodes and cores (par).
	ClusterPar
)

func (h ParHint) String() string {
	switch h {
	case Sequential:
		return "seq"
	case NodePar:
		return "localpar"
	case ClusterPar:
		return "par"
	}
	return fmt.Sprintf("ParHint(%d)", uint8(h))
}

// Iter is the hybrid iterator (paper §3.2): a loop nest encoded with either
// an indexer or a stepper at each nesting level. All skeleton functions in
// this package preserve the invariant that an iterator's outer structure is
// determined solely by its input's structure, so compositions of calls
// always simplify to a fused loop nest.
type Iter[T any] struct {
	kind  Kind
	idx   Idx[T]        // KIdxFlat
	step  Step[T]       // KStepFlat
	idxN  Idx[Iter[T]]  // KIdxNest
	stepN Step[Iter[T]] // KStepNest
	fidx  FIdx[T]       // KIdxFilter
	hint  ParHint
	grain int // planner-chosen parallel grain; 0 = consumer default (grain.go)
}

// FIdx is the partial indexer backing KIdxFilter: At reports ok=false when
// index i's element is rejected. The unexported fast pointer carries the
// block engine's fast paths (see block.go): a compacting block kernel — one
// indirect call evaluates a whole block of indices and packs the survivors
// to the front of a buffer — and the pure-filter slice+predicate view, so
// filter-heavy consumers avoid the two-valued At call per element.
type FIdx[T any] struct {
	N    int
	At   func(i int) (T, bool)
	fast *fidxFast[T]
}

// cfill returns fx's compacting block-kernel generator, or nil.
func (fx FIdx[T]) cfill() func() cfillFn[T] {
	if fx.fast != nil {
		return fx.fast.fill
	}
	return nil
}

// filterView returns fx's pure-filter representation, or (nil, nil).
func (fx FIdx[T]) filterView() ([]T, func(T) bool) {
	if fx.fast != nil {
		return fx.fast.back, fx.fast.pred
	}
	return nil, nil
}

// IdxFilter wraps a partial indexer as an iterator.
func IdxFilter[T any](fx FIdx[T]) Iter[T] { return Iter[T]{kind: KIdxFilter, fidx: fx} }

// Kind reports which constructor built the iterator.
func (it Iter[T]) Kind() Kind { return it.kind }

// Hint reports the iterator's parallelism hint.
func (it Iter[T]) Hint() ParHint { return it.hint }

// IdxFlat wraps an indexer as an iterator.
func IdxFlat[T any](ix Idx[T]) Iter[T] { return Iter[T]{kind: KIdxFlat, idx: ix} }

// StepFlat wraps a stepper as an iterator.
func StepFlat[T any](s Step[T]) Iter[T] { return Iter[T]{kind: KStepFlat, step: s} }

// IdxNest wraps an indexer of inner iterators as a nested iterator.
func IdxNest[T any](ix Idx[Iter[T]]) Iter[T] { return Iter[T]{kind: KIdxNest, idxN: ix} }

// StepNest wraps a stepper of inner iterators as a nested iterator.
func StepNest[T any](s Step[Iter[T]]) Iter[T] { return Iter[T]{kind: KStepNest, stepN: s} }

// FromSlice iterates over the elements of a slice (no copy).
func FromSlice[T any](xs []T) Iter[T] { return IdxFlat(IdxOf(xs)) }

// Range iterates over the integers [0, n) (the counted-loop iterator).
func Range(n int) Iter[int] { return IdxFlat(IdxRange(n)) }

// RangeOf iterates over the integers of r.
func RangeOf(r domain.Range) Iter[int] {
	return IdxFlat(Idx[int]{N: r.Len(), At: func(i int) int { return r.Lo + i }})
}

// Empty is the iterator with no elements.
func Empty[T any]() Iter[T] {
	return IdxFlat(Idx[T]{N: 0, At: func(int) T { panic("iter: Empty.At") }})
}

// Single is the iterator yielding exactly v.
func Single[T any](v T) Iter[T] {
	return IdxFlat(Idx[T]{N: 1, At: func(int) T { return v }})
}

// Par marks the iterator for distributed + thread parallelism (paper's par
// hint). Consumers that understand the hint (the skeletons in
// internal/core) choose a distributed implementation.
func Par[T any](it Iter[T]) Iter[T] { it.hint = ClusterPar; return it }

// LocalPar marks the iterator for thread parallelism within one node
// (paper's localpar hint).
func LocalPar[T any](it Iter[T]) Iter[T] { it.hint = NodePar; return it }

// Seq clears any parallelism hint.
func Seq[T any](it Iter[T]) Iter[T] { it.hint = Sequential; return it }

// ToStep flattens any iterator into a sequential stepper (paper Fig. 2's
// toStep, used when zipping irregular iterators). Parallelism potential is
// lost; ordering is preserved.
func ToStep[T any](it Iter[T]) Step[T] {
	switch it.kind {
	case KIdxFlat:
		return IdxToStep(it.idx)
	case KIdxFilter:
		fx := it.fidx
		return Step[T]{Gen: func() Cursor[T] {
			i := 0
			return func() (T, bool) {
				for i < fx.N {
					v, ok := fx.At(i)
					i++
					if ok {
						return v, true
					}
				}
				var zero T
				return zero, false
			}
		}}
	case KStepFlat:
		return it.step
	case KIdxNest:
		return ConcatMapStep(ToStep[T], IdxToStep(it.idxN))
	case KStepNest:
		return ConcatMapStep(ToStep[T], it.stepN)
	}
	panic("iter: bad kind")
}

// Map applies f to every element. The output loop structure mirrors the
// input structure, so regular input stays parallelizable and nested input
// stays a loop nest.
func Map[T, U any](f func(T) U, it Iter[T]) Iter[U] {
	out := Iter[U]{kind: it.kind, hint: it.hint, grain: it.grain}
	switch it.kind {
	case KIdxFlat:
		out.idx = MapIdx(f, it.idx)
	case KStepFlat:
		out.step = MapStep(f, it.step)
	case KIdxNest:
		out.idxN = MapIdx(func(inner Iter[T]) Iter[U] { return Map(f, inner) }, it.idxN)
	case KStepNest:
		out.stepN = MapStep(func(inner Iter[T]) Iter[U] { return Map(f, inner) }, it.stepN)
	case KIdxFilter:
		fx := it.fidx
		out.fidx = FIdx[U]{N: fx.N, At: func(i int) (U, bool) {
			v, ok := fx.At(i)
			if !ok {
				var zero U
				return zero, false
			}
			return f(v), true
		}}
		if gen := fx.cfill(); gen != nil {
			out.fidx.fast = &fidxFast[U]{fill: func() cfillFn[U] {
				read := gen()
				var scratch []T
				return func(dst []U, base, n int) int {
					s := ensure(&scratch, n)
					k := read(s, base, n)
					for i, v := range s[:k] {
						dst[i] = f(v)
					}
					return k
				}
			}}
		}
	default:
		panic("iter: bad kind")
	}
	return out
}

// Filter keeps elements satisfying pred (paper Fig. 2's filter). Over a
// flat indexer it produces a partial indexer (KIdxFilter, the simplified
// form of Fig. 2's indexer of zero-or-one-element steppers): indices are
// not reassigned, so the outer loop remains partitionable across parallel
// tasks, which is the key to fusing sum-of-filter without a counting pass
// (paper §3.2).
func Filter[T any](pred func(T) bool, it Iter[T]) Iter[T] {
	out := Iter[T]{hint: it.hint, grain: it.grain}
	switch it.kind {
	case KIdxFlat:
		// Paper Fig. 2 builds IdxNest(mapIdx(StepFlat . filterStep pred .
		// unitStep)); KIdxFilter is that term after simplification.
		ix := it.idx
		out.kind = KIdxFilter
		out.fidx = FIdx[T]{N: ix.N, At: func(i int) (T, bool) {
			v := ix.At(i)
			return v, pred(v)
		}}
		if back := ix.backing(); back != nil {
			out.fidx.fast = &fidxFast[T]{
				back: back,
				pred: pred,
				fill: func() cfillFn[T] {
					return func(dst []T, base, n int) int {
						k := 0
						for _, v := range back[base : base+n] {
							if pred(v) {
								dst[k] = v
								k++
							}
						}
						return k
					}
				},
			}
		} else if gen := ix.fillGen(); gen != nil {
			out.fidx.fast = &fidxFast[T]{fill: func() cfillFn[T] {
				read := gen()
				var scratch []T
				return func(dst []T, base, n int) int {
					s := ensure(&scratch, n)
					read(s, base)
					k := 0
					for _, v := range s {
						if pred(v) {
							dst[k] = v
							k++
						}
					}
					return k
				}
			}}
		}
	case KIdxFilter:
		// Filtering twice composes the rejection tests.
		fx := it.fidx
		out.kind = KIdxFilter
		out.fidx = FIdx[T]{N: fx.N, At: func(i int) (T, bool) {
			v, ok := fx.At(i)
			return v, ok && pred(v)
		}}
		if fx.fast != nil {
			fast := &fidxFast[T]{}
			if back, p0 := fx.filterView(); back != nil {
				fast.back = back
				fast.pred = func(v T) bool { return p0(v) && pred(v) }
			}
			if gen := fx.cfill(); gen != nil {
				fast.fill = func() cfillFn[T] {
					read := gen()
					return func(dst []T, base, n int) int {
						k := read(dst, base, n)
						w := 0
						for _, v := range dst[:k] {
							if pred(v) {
								dst[w] = v
								w++
							}
						}
						return w
					}
				}
			}
			out.fidx.fast = fast
		}
	case KStepFlat:
		out.kind = KStepFlat
		out.step = FilterStep(pred, it.step)
	case KIdxNest:
		out.kind = KIdxNest
		out.idxN = MapIdx(func(inner Iter[T]) Iter[T] { return Filter(pred, inner) }, it.idxN)
	case KStepNest:
		out.kind = KStepNest
		out.stepN = MapStep(func(inner Iter[T]) Iter[T] { return Filter(pred, inner) }, it.stepN)
	default:
		panic("iter: bad kind")
	}
	return out
}

// ConcatMap expands every element into an inner iterator and concatenates
// the results (paper Fig. 2's concatMap) — the nested-traversal skeleton.
// Over a flat indexer it adds one level of nesting, preserving outer-loop
// parallelism instead of falling back to slow stepper nesting.
func ConcatMap[T, U any](f func(T) Iter[U], it Iter[T]) Iter[U] {
	out := Iter[U]{hint: it.hint, grain: it.grain}
	switch it.kind {
	case KIdxFlat:
		out.kind = KIdxNest
		out.idxN = MapIdx(f, it.idx)
	case KIdxFilter:
		fx := it.fidx
		out.kind = KIdxNest
		out.idxN = Idx[Iter[U]]{N: fx.N, At: func(i int) Iter[U] {
			v, ok := fx.At(i)
			if !ok {
				return Empty[U]()
			}
			return f(v)
		}}
	case KStepFlat:
		out.kind = KStepNest
		out.stepN = MapStep(f, it.step)
	case KIdxNest:
		out.kind = KIdxNest
		out.idxN = MapIdx(func(inner Iter[T]) Iter[U] { return ConcatMap(f, inner) }, it.idxN)
	case KStepNest:
		out.kind = KStepNest
		out.stepN = MapStep(func(inner Iter[T]) Iter[U] { return ConcatMap(f, inner) }, it.stepN)
	default:
		panic("iter: bad kind")
	}
	return out
}

// Zip pairs corresponding elements (paper Fig. 2's zip). Two flat indexers
// zip into a flat indexer, preserving parallelism for regular loops; any
// other combination is zipped sequentially through steppers.
func Zip[A, B any](a Iter[A], b Iter[B]) Iter[Pair[A, B]] {
	hint := mergeHint(a.hint, b.hint)
	grain := mergeGrain(a.grain, b.grain)
	if a.kind == KIdxFlat && b.kind == KIdxFlat {
		out := IdxFlat(ZipIdx(a.idx, b.idx))
		out.hint, out.grain = hint, grain
		return out
	}
	out := StepFlat(ZipStep(ToStep(a), ToStep(b)))
	out.hint, out.grain = hint, grain
	return out
}

// ZipWith combines corresponding elements with f.
func ZipWith[A, B, C any](f func(A, B) C, a Iter[A], b Iter[B]) Iter[C] {
	hint := mergeHint(a.hint, b.hint)
	grain := mergeGrain(a.grain, b.grain)
	if a.kind == KIdxFlat && b.kind == KIdxFlat {
		out := IdxFlat(ZipWithIdx(f, a.idx, b.idx))
		out.hint, out.grain = hint, grain
		return out
	}
	out := Map(func(p Pair[A, B]) C { return f(p.Fst, p.Snd) }, Zip(a, b))
	out.hint, out.grain = hint, grain
	return out
}

// Zip3 triples corresponding elements of three iterators.
func Zip3[A, B, C any](a Iter[A], b Iter[B], c Iter[C]) Iter[Triple[A, B, C]] {
	hint := mergeHint(mergeHint(a.hint, b.hint), c.hint)
	grain := mergeGrain(mergeGrain(a.grain, b.grain), c.grain)
	if a.kind == KIdxFlat && b.kind == KIdxFlat && c.kind == KIdxFlat {
		n := min(a.idx.N, b.idx.N, c.idx.N)
		ia, ib, ic := a.idx, b.idx, c.idx
		out := IdxFlat(Idx[Triple[A, B, C]]{N: n, At: func(i int) Triple[A, B, C] {
			return Triple[A, B, C]{Fst: ia.At(i), Snd: ib.At(i), Trd: ic.At(i)}
		}})
		out.hint, out.grain = hint, grain
		return out
	}
	out := Map(func(p Pair[Pair[A, B], C]) Triple[A, B, C] {
		return Triple[A, B, C]{Fst: p.Fst.Fst, Snd: p.Fst.Snd, Trd: p.Snd}
	}, Zip(Zip(a, b), c))
	out.hint, out.grain = hint, grain
	return out
}

func mergeHint(a, b ParHint) ParHint { return max(a, b) }

// Collect converts the iterator into a collector that pushes every element
// to a side-effecting worker (paper Fig. 2's collect). Each nesting level
// becomes one loop of the resulting loop nest. Slice-backed and
// block-capable producers feed the worker from tight buffer loops.
func Collect[T any](it Iter[T]) Collector[T] {
	switch it.kind {
	case KIdxFlat:
		ix := it.idx
		if back := ix.backing(); blockDriverEnabled && back != nil {
			return func(w func(T)) {
				for _, v := range back {
					w(v)
				}
			}
		}
		if gen := ix.fillGen(); blockDriverEnabled && gen != nil && ix.N >= blockMin {
			n := ix.N
			return func(w func(T)) {
				g := gen()
				buf := make([]T, blockLen(n))
				for base := 0; base < n; base += BlockSize {
					end := base + BlockSize
					if end > n {
						end = n
					}
					b := buf[:end-base]
					g(b, base)
					for _, v := range b {
						w(v)
					}
				}
			}
		}
		return IdxToColl(ix)
	case KStepFlat:
		return StepToColl(it.step)
	case KIdxNest:
		inner := it.idxN
		return func(w func(T)) {
			for i := 0; i < inner.N; i++ {
				Collect(inner.At(i))(w)
			}
		}
	case KStepNest:
		inner := it.stepN
		return func(w func(T)) {
			cur := inner.Gen()
			for {
				sub, ok := cur()
				if !ok {
					return
				}
				Collect(sub)(w)
			}
		}
	case KIdxFilter:
		fx := it.fidx
		if back, pred := fx.filterView(); blockDriverEnabled && back != nil {
			return func(w func(T)) {
				for _, v := range back {
					if pred(v) {
						w(v)
					}
				}
			}
		}
		if gen := fx.cfill(); blockDriverEnabled && gen != nil && fx.N >= blockMin {
			n := fx.N
			return func(w func(T)) {
				g := gen()
				buf := make([]T, blockLen(n))
				for base := 0; base < n; base += BlockSize {
					end := base + BlockSize
					if end > n {
						end = n
					}
					k := g(buf[:end-base], base, end-base)
					for _, v := range buf[:k] {
						w(v)
					}
				}
			}
		}
		return func(w func(T)) {
			for i := 0; i < fx.N; i++ {
				if v, ok := fx.At(i); ok {
					w(v)
				}
			}
		}
	}
	panic("iter: bad kind")
}

// Reduce folds the iterator left-to-right with worker w from initial
// accumulator z, consuming each nesting level as one loop (the generic form
// of paper Fig. 2's sum).
func Reduce[T, A any](it Iter[T], z A, w func(A, T) A) A {
	switch it.kind {
	case KIdxFlat:
		return FoldIdx(it.idx, z, w)
	case KStepFlat:
		return FoldStep(it.step, z, w)
	case KIdxNest:
		return FoldIdx(it.idxN, z, func(acc A, inner Iter[T]) A { return Reduce(inner, acc, w) })
	case KStepNest:
		return FoldStep(it.stepN, z, func(acc A, inner Iter[T]) A { return Reduce(inner, acc, w) })
	case KIdxFilter:
		fx := it.fidx
		if back, pred := fx.filterView(); blockDriverEnabled && back != nil {
			acc := z
			for _, v := range back {
				if pred(v) {
					acc = w(acc, v)
				}
			}
			return acc
		}
		// Reductions never stop early, so route through the collector
		// encoding (ReduceColl): Collect picks the block-compacting driver
		// when one exists, and the worker never pays the two-valued At call
		// or the early-exit bool of the fold encoding.
		return ReduceColl(Collect(it), z, w)
	}
	panic("iter: bad kind")
}

// Number is re-exported from array's constraint set for the numeric
// reductions. Defined here so iter has no dependency on array.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// Sum adds all elements (paper Fig. 2's sum). This is the consumer the
// block engine specializes hardest: slice-backed pipelines reduce with a
// monomorphic loop over the backing array (no per-element calls at all),
// block-capable pipelines pay one kernel call per BlockSize elements and
// reduce each buffer with the same monomorphic loop, and nests recurse so
// slice-backed inner loops keep the fast path.
func Sum[T Number](it Iter[T]) T {
	var zero T
	return sumFrom(zero, it)
}

// sumFrom folds it's elements into acc left-to-right. The block paths thread
// the caller's accumulator through every block and inner iterator (rather
// than summing each from zero and adding partials), so the addition tree is
// identical to the per-element driver's and floating-point sums agree
// bit-for-bit between the two drivers.
func sumFrom[T Number](acc T, it Iter[T]) T {
	if blockDriverEnabled {
		switch it.kind {
		case KIdxFlat:
			ix := it.idx
			if back := ix.backing(); back != nil {
				return sumSliceFrom(acc, back)
			}
			if mapSrc, mapFns := ix.chain(); mapSrc != nil {
				// Map chain: one pass over the source, one indirect call per
				// user function per element — the raw-loop shape up to those
				// calls, with no buffer at all.
				return sumChain(acc, mapSrc, mapFns)
			}
			if r := redOf(ix); r != nil {
				// Fused reduction kernel (fuse.go): fold straight off the
				// pipeline's source arrays, no staging buffer at all.
				return r(acc, 0, ix.N)
			}
			if gen := ix.fillGen(); gen != nil && ix.N >= blockMin {
				g := gen()
				buf := make([]T, blockLen(ix.N))
				for base := 0; base < ix.N; base += BlockSize {
					end := base + BlockSize
					if end > ix.N {
						end = ix.N
					}
					b := buf[:end-base]
					g(b, base)
					acc = sumSliceFrom(acc, b)
				}
				return acc
			}
		case KIdxFilter:
			fx := it.fidx
			if back, pred := fx.filterView(); back != nil {
				// Pure filter of a slice: test each element where it lies —
				// no compaction, no staging buffer, same loop as raw code.
				for _, v := range back {
					if pred(v) {
						acc += v
					}
				}
				return acc
			}
			if gen := fx.cfill(); gen != nil && fx.N >= blockMin {
				g := gen()
				buf := make([]T, blockLen(fx.N))
				for base := 0; base < fx.N; base += BlockSize {
					end := base + BlockSize
					if end > fx.N {
						end = fx.N
					}
					k := g(buf[:end-base], base, end-base)
					acc = sumSliceFrom(acc, buf[:k])
				}
				return acc
			}
		case KIdxNest:
			// The whole nest shares one scratch arena: block-driven inner
			// pipelines stage through it instead of allocating a buffer per
			// outer element (the dominant cost of deep concatMap nests).
			inner := it.idxN
			var arena []T
			for i := 0; i < inner.N; i++ {
				acc = sumInner(acc, inner.At(i), &arena)
			}
			return acc
		}
	}
	return Reduce(it, acc, func(a, v T) T { return a + v })
}

// sumInner is sumFrom for the inner iterators of a nest. It differs in two
// ways tuned to loops that run once per outer element: staging buffers come
// from the caller's arena (allocated once per nest, grown to the largest
// inner block), and the short-iterator fallback is an inline At loop rather
// than the Reduce/FoldIdx dispatch — the closure those build per call costs
// more than a handful of elements' worth of work. Fold order matches
// sumFrom exactly, keeping results bit-identical across drivers.
func sumInner[T Number](acc T, it Iter[T], arena *[]T) T {
	switch it.kind {
	case KIdxFlat:
		ix := it.idx
		if back := ix.backing(); back != nil {
			return sumSliceFrom(acc, back)
		}
		if mapSrc, mapFns := ix.chain(); mapSrc != nil {
			return sumChain(acc, mapSrc, mapFns)
		}
		if r := redOf(ix); r != nil {
			return r(acc, 0, ix.N)
		}
		if gen := ix.fillGen(); gen != nil && ix.N >= blockMin {
			g := gen()
			buf := ensure(arena, blockLen(ix.N))
			for base := 0; base < ix.N; base += BlockSize {
				end := base + BlockSize
				if end > ix.N {
					end = ix.N
				}
				b := buf[:end-base]
				g(b, base)
				acc = sumSliceFrom(acc, b)
			}
			return acc
		}
		at := ix.At
		for i := 0; i < ix.N; i++ {
			acc += at(i)
		}
		return acc
	case KIdxFilter:
		fx := it.fidx
		if back, pred := fx.filterView(); back != nil {
			for _, v := range back {
				if pred(v) {
					acc += v
				}
			}
			return acc
		}
		if gen := fx.cfill(); gen != nil && fx.N >= blockMin {
			g := gen()
			buf := ensure(arena, blockLen(fx.N))
			for base := 0; base < fx.N; base += BlockSize {
				end := base + BlockSize
				if end > fx.N {
					end = fx.N
				}
				k := g(buf[:end-base], base, end-base)
				acc = sumSliceFrom(acc, buf[:k])
			}
			return acc
		}
	case KIdxNest:
		inner := it.idxN
		for i := 0; i < inner.N; i++ {
			acc = sumInner(acc, inner.At(i), arena)
		}
		return acc
	}
	return Reduce(it, acc, func(a, v T) T { return a + v })
}

// Count returns the number of elements the iterator yields. Flat indexers
// know their count statically; nests sum inner counts so slice-backed inner
// loops stay cheap; filters count survivors block-wise when they can.
func Count[T any](it Iter[T]) int {
	switch it.kind {
	case KIdxFlat:
		return it.idx.N
	case KIdxNest:
		inner := it.idxN
		total := 0
		for i := 0; i < inner.N; i++ {
			total += Count(inner.At(i))
		}
		return total
	case KIdxFilter:
		fx := it.fidx
		if back, pred := fx.filterView(); blockDriverEnabled && back != nil {
			total := 0
			for _, v := range back {
				if pred(v) {
					total++
				}
			}
			return total
		}
		if gen := fx.cfill(); blockDriverEnabled && gen != nil && fx.N >= blockMin {
			g := gen()
			buf := make([]T, blockLen(fx.N))
			total := 0
			for base := 0; base < fx.N; base += BlockSize {
				end := base + BlockSize
				if end > fx.N {
					end = fx.N
				}
				total += g(buf[:end-base], base, end-base)
			}
			return total
		}
	}
	return Reduce(it, 0, func(n int, _ T) int { return n + 1 })
}

// ToSlice materializes the iterator into a fresh slice. Producers with a
// statically known extent are materialized into exactly-sized storage: flat
// indexers fill the output array in place (block kernels write their blocks
// directly into it, slice-backed inputs are a single copy), and filters
// append block-compacted survivors into a capacity-N buffer. Only nests and
// steppers, whose lengths are dynamic, fall back to append-growth.
func ToSlice[T any](it Iter[T]) []T {
	switch it.kind {
	case KIdxFlat:
		out := make([]T, it.idx.N)
		FillRange(out, it, 0)
		return out
	case KIdxFilter:
		fx := it.fidx
		out := make([]T, 0, fx.N)
		if back, pred := fx.filterView(); blockDriverEnabled && back != nil {
			for _, v := range back {
				if pred(v) {
					out = append(out, v)
				}
			}
			return out
		}
		if gen := fx.cfill(); blockDriverEnabled && gen != nil && fx.N >= blockMin {
			g := gen()
			buf := make([]T, blockLen(fx.N))
			for base := 0; base < fx.N; base += BlockSize {
				end := base + BlockSize
				if end > fx.N {
					end = fx.N
				}
				k := g(buf[:end-base], base, end-base)
				out = append(out, buf[:k]...)
			}
			return out
		}
		for i := 0; i < fx.N; i++ {
			if v, ok := fx.At(i); ok {
				out = append(out, v)
			}
		}
		return out
	}
	var out []T
	Collect(it).RunInto(&out)
	return out
}

// OuterLen reports the extent of the outermost loop, which is the number of
// units the parallel partitioner can split. Stepper-rooted iterators have
// no statically known extent and report (0, false).
func (it Iter[T]) OuterLen() (int, bool) {
	switch it.kind {
	case KIdxFlat:
		return it.idx.N, true
	case KIdxNest:
		return it.idxN.N, true
	case KIdxFilter:
		return it.fidx.N, true
	}
	return 0, false
}

// CanSplit reports whether the iterator's outermost loop is an indexer and
// therefore partitionable across parallel tasks.
func (it Iter[T]) CanSplit() bool {
	return it.kind == KIdxFlat || it.kind == KIdxNest || it.kind == KIdxFilter
}

// Split restricts the iterator to outer indices [r.Lo, r.Hi). It panics if
// the iterator is not splittable; callers gate on CanSplit. Parallel
// consumers give each task one split and reduce the per-task results.
func Split[T any](it Iter[T], r domain.Range) Iter[T] {
	switch it.kind {
	case KIdxFlat:
		out := IdxFlat(SliceIdx(it.idx, r.Lo, r.Hi))
		out.hint = it.hint
		return out
	case KIdxNest:
		out := IdxNest(SliceIdx(it.idxN, r.Lo, r.Hi))
		out.hint = it.hint
		return out
	case KIdxFilter:
		fx := it.fidx
		if r.Lo < 0 || r.Hi > fx.N || r.Lo > r.Hi {
			panic(fmt.Sprintf("iter: Split [%d,%d) of %d", r.Lo, r.Hi, fx.N))
		}
		sub := FIdx[T]{N: r.Len(), At: func(i int) (T, bool) {
			return fx.At(r.Lo + i)
		}}
		if fx.fast != nil {
			fast := &fidxFast[T]{}
			if back, pred := fx.filterView(); back != nil {
				fast.back, fast.pred = back[r.Lo:r.Hi:r.Hi], pred
			}
			if gen := fx.cfill(); gen != nil {
				lo := r.Lo
				fast.fill = func() cfillFn[T] {
					read := gen()
					return func(dst []T, base, n int) int { return read(dst, base+lo, n) }
				}
			}
			sub.fast = fast
		}
		out := IdxFilter(sub)
		out.hint = it.hint
		return out
	}
	panic(fmt.Sprintf("iter: Split of non-splittable %v iterator", it.kind))
}
