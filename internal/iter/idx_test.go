package iter

import (
	"testing"
	"testing/quick"
)

func TestIdxOf(t *testing.T) {
	ix := IdxOf([]int{10, 20, 30})
	if ix.N != 3 || ix.At(1) != 20 {
		t.Fatalf("IdxOf wrong: N=%d At(1)=%d", ix.N, ix.At(1))
	}
}

func TestIdxRange(t *testing.T) {
	ix := IdxRange(4)
	for i := range 4 {
		if ix.At(i) != i {
			t.Fatalf("IdxRange.At(%d) = %d", i, ix.At(i))
		}
	}
}

func TestIdxRangeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	IdxRange(-1)
}

func TestMapIdxFuses(t *testing.T) {
	// Mapping twice composes lookups: the paper's example of indexer fusion.
	ix := MapIdx(func(x int) int { return x * 10 }, MapIdx(func(x int) int { return x + 1 }, IdxRange(5)))
	if ix.At(3) != 40 {
		t.Fatalf("composed lookup = %d, want 40", ix.At(3))
	}
}

func TestZipIdxIntersection(t *testing.T) {
	z := ZipIdx(IdxOf([]int{1, 2, 3}), IdxOf([]string{"a", "b"}))
	if z.N != 2 {
		t.Fatalf("zip length = %d, want 2", z.N)
	}
	if p := z.At(1); p.Fst != 2 || p.Snd != "b" {
		t.Fatalf("zip At(1) = %+v", p)
	}
}

func TestZipWithIdx(t *testing.T) {
	z := ZipWithIdx(func(a, b int) int { return a * b }, IdxOf([]int{1, 2, 3}), IdxOf([]int{4, 5, 6}))
	if z.N != 3 || z.At(2) != 18 {
		t.Fatalf("ZipWithIdx wrong: N=%d At(2)=%d", z.N, z.At(2))
	}
}

func TestSliceIdx(t *testing.T) {
	s := SliceIdx(IdxRange(10), 3, 7)
	if s.N != 4 {
		t.Fatalf("slice N = %d", s.N)
	}
	if s.At(0) != 3 || s.At(3) != 6 {
		t.Fatalf("slice rebasing wrong: %d %d", s.At(0), s.At(3))
	}
}

func TestSliceIdxBoundsPanics(t *testing.T) {
	for _, f := range []func(){
		func() { SliceIdx(IdxRange(5), -1, 3) },
		func() { SliceIdx(IdxRange(5), 0, 6) },
		func() { SliceIdx(IdxRange(5), 4, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestFoldIdx(t *testing.T) {
	got := FoldIdx(IdxRange(5), 100, func(a, v int) int { return a + v })
	if got != 110 {
		t.Fatalf("FoldIdx = %d", got)
	}
}

func TestIdxToStepOrder(t *testing.T) {
	cur := IdxToStep(IdxOf([]int{7, 8, 9})).Gen()
	for _, want := range []int{7, 8, 9} {
		v, ok := cur()
		if !ok || v != want {
			t.Fatalf("step got (%d,%v), want %d", v, ok, want)
		}
	}
	if _, ok := cur(); ok {
		t.Fatal("cursor not exhausted")
	}
	if _, ok := cur(); ok {
		t.Fatal("cursor resurrected after exhaustion")
	}
}

func TestIdxToStepRestartable(t *testing.T) {
	s := IdxToStep(IdxRange(3))
	for range 2 { // two independent traversals
		n := CountStep(s)
		if n != 3 {
			t.Fatalf("traversal counted %d", n)
		}
	}
}

func TestIdxToFoldEarlyStop(t *testing.T) {
	var seen []int
	IdxToFold(IdxRange(100))(func(v int) bool {
		seen = append(seen, v)
		return v < 2
	})
	// yield(0)=true, yield(1)=true, yield(2)=false → exactly 3 calls.
	if len(seen) != 3 {
		t.Fatalf("early stop saw %v", seen)
	}
}

func TestIdxToColl(t *testing.T) {
	var sum int
	IdxToColl(IdxRange(5))(func(v int) { sum += v })
	if sum != 10 {
		t.Fatalf("collector sum = %d", sum)
	}
}

// Property: slicing then folding equals folding the corresponding slice of
// the materialized elements.
func TestSliceIdxAgreesWithSlices(t *testing.T) {
	prop := func(xs []int, a, b uint8) bool {
		ix := IdxOf(xs)
		lo := 0
		hi := len(xs)
		if len(xs) > 0 {
			lo = int(a) % len(xs)
			hi = lo + int(b)%(len(xs)-lo+1)
		}
		s := SliceIdx(ix, lo, hi)
		got := FoldIdx(s, 0, func(acc, v int) int { return acc + v })
		want := 0
		for _, v := range xs[lo:hi] {
			want += v
		}
		return got == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
