package iter

import (
	"testing"
	"testing/quick"
)

func drain[T any](s Step[T]) []T {
	var out []T
	cur := s.Gen()
	for {
		v, ok := cur()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

func eqSlices[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyStep(t *testing.T) {
	if got := drain(EmptyStep[int]()); len(got) != 0 {
		t.Fatalf("EmptyStep yielded %v", got)
	}
}

func TestUnitStep(t *testing.T) {
	if got := drain(UnitStep(42)); !eqSlices(got, []int{42}) {
		t.Fatalf("UnitStep yielded %v", got)
	}
	// restartable
	s := UnitStep("x")
	if CountStep(s) != 1 || CountStep(s) != 1 {
		t.Fatal("UnitStep not restartable")
	}
}

func TestStepOf(t *testing.T) {
	if got := drain(StepOf([]int{1, 2, 3})); !eqSlices(got, []int{1, 2, 3}) {
		t.Fatalf("StepOf = %v", got)
	}
}

func TestMapStep(t *testing.T) {
	got := drain(MapStep(func(x int) int { return x * x }, StepOf([]int{1, 2, 3})))
	if !eqSlices(got, []int{1, 4, 9}) {
		t.Fatalf("MapStep = %v", got)
	}
}

func TestFilterStep(t *testing.T) {
	even := func(x int) bool { return x%2 == 0 }
	got := drain(FilterStep(even, StepOf([]int{1, 2, 3, 4, 5, 6})))
	if !eqSlices(got, []int{2, 4, 6}) {
		t.Fatalf("FilterStep = %v", got)
	}
	// all rejected
	if got := drain(FilterStep(func(int) bool { return false }, StepOf([]int{1, 2}))); len(got) != 0 {
		t.Fatalf("reject-all = %v", got)
	}
}

func TestZipStepShorter(t *testing.T) {
	got := drain(ZipStep(StepOf([]int{1, 2, 3}), StepOf([]string{"a", "b"})))
	if len(got) != 2 || got[1].Fst != 2 || got[1].Snd != "b" {
		t.Fatalf("ZipStep = %v", got)
	}
}

func TestConcatMapStep(t *testing.T) {
	// Expand each x into x copies of x: [1,2,3] → [1,2,2,3,3,3].
	rep := func(x int) Step[int] {
		return IdxToStep(Idx[int]{N: x, At: func(int) int { return x }})
	}
	got := drain(ConcatMapStep(rep, StepOf([]int{1, 2, 3})))
	if !eqSlices(got, []int{1, 2, 2, 3, 3, 3}) {
		t.Fatalf("ConcatMapStep = %v", got)
	}
}

func TestConcatMapStepEmptyInners(t *testing.T) {
	got := drain(ConcatMapStep(func(int) Step[int] { return EmptyStep[int]() }, StepOf([]int{1, 2, 3})))
	if len(got) != 0 {
		t.Fatalf("empty inners = %v", got)
	}
}

func TestTakeStep(t *testing.T) {
	got := drain(TakeStep(2, StepOf([]int{5, 6, 7})))
	if !eqSlices(got, []int{5, 6}) {
		t.Fatalf("TakeStep = %v", got)
	}
	if got := drain(TakeStep(0, StepOf([]int{5}))); len(got) != 0 {
		t.Fatalf("TakeStep(0) = %v", got)
	}
	if got := drain(TakeStep(9, StepOf([]int{5}))); !eqSlices(got, []int{5}) {
		t.Fatalf("TakeStep(9) = %v", got)
	}
}

func TestFoldStep(t *testing.T) {
	got := FoldStep(StepOf([]int{1, 2, 3}), 0, func(a, v int) int { return a*10 + v })
	if got != 123 {
		t.Fatalf("FoldStep = %d", got)
	}
}

func TestStepToFoldEarlyStop(t *testing.T) {
	calls := 0
	StepToFold(StepOf([]int{1, 2, 3, 4}))(func(v int) bool {
		calls++
		return v != 2
	})
	if calls != 2 {
		t.Fatalf("early stop made %d calls", calls)
	}
}

func TestStepToColl(t *testing.T) {
	sum := 0
	StepToColl(StepOf([]int{1, 2, 3}))(func(v int) { sum += v })
	if sum != 6 {
		t.Fatalf("StepToColl sum = %d", sum)
	}
}

// Property: MapStep then FilterStep equals the slice-level reference.
func TestStepPipelineAgainstReference(t *testing.T) {
	prop := func(xs []int16) bool {
		f := func(x int16) int16 { return x / 3 }
		p := func(x int16) bool { return x%2 == 0 }
		got := drain(FilterStep(p, MapStep(f, StepOf(xs))))
		var want []int16
		for _, x := range xs {
			if v := f(x); p(v) {
				want = append(want, v)
			}
		}
		return eqSlices(got, want)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ConcatMapStep's output length is the sum of inner lengths.
func TestConcatMapStepLength(t *testing.T) {
	prop := func(ns []uint8) bool {
		xs := make([]int, len(ns))
		want := 0
		for i, n := range ns {
			xs[i] = int(n % 10)
			want += xs[i]
		}
		rep := func(x int) Step[int] {
			return IdxToStep(Idx[int]{N: x, At: func(int) int { return x }})
		}
		return CountStep(ConcatMapStep(rep, StepOf(xs))) == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
