package iter

// Cursor yields successive elements of a traversal. The second result is
// false when the traversal is exhausted (and stays false thereafter).
type Cursor[T any] func() (T, bool)

// Step is the stepper encoding (paper §3.1 "Steppers"): a restartable
// coroutine. Gen returns a fresh cursor positioned at the first element, so
// a Step can be traversed multiple times, matching the value semantics of
// the paper's suspended-loop-state encoding. Steppers support filtering and
// variable-length output but cannot be split across parallel tasks.
type Step[T any] struct {
	Gen func() Cursor[T]
}

// EmptyStep is the stepper with no elements.
func EmptyStep[T any]() Step[T] {
	return Step[T]{Gen: func() Cursor[T] {
		return func() (T, bool) {
			var zero T
			return zero, false
		}
	}}
}

// UnitStep is the stepper yielding exactly one element (paper Fig. 2's
// unitStep, used to lift each element of an indexer into a one-element
// inner loop when filtering).
func UnitStep[T any](v T) Step[T] {
	return Step[T]{Gen: func() Cursor[T] {
		done := false
		return func() (T, bool) {
			if done {
				var zero T
				return zero, false
			}
			done = true
			return v, true
		}
	}}
}

// StepOf yields the elements of a slice in order without copying.
func StepOf[T any](xs []T) Step[T] {
	return IdxToStep(IdxOf(xs))
}

// MapStep applies f to each element the stepper yields. The returned
// stepper's cursor performs s's step followed immediately by f — the fused
// loop body.
func MapStep[T, U any](f func(T) U, s Step[T]) Step[U] {
	return Step[U]{Gen: func() Cursor[U] {
		cur := s.Gen()
		return func() (U, bool) {
			v, ok := cur()
			if !ok {
				var zero U
				return zero, false
			}
			return f(v), true
		}
	}}
}

// FilterStep keeps only elements satisfying pred (paper Fig. 2's
// filterStep). Each call to the cursor advances the underlying cursor past
// rejected elements, so filtering fuses with the producer.
func FilterStep[T any](pred func(T) bool, s Step[T]) Step[T] {
	return Step[T]{Gen: func() Cursor[T] {
		cur := s.Gen()
		return func() (T, bool) {
			for {
				v, ok := cur()
				if !ok {
					var zero T
					return zero, false
				}
				if pred(v) {
					return v, true
				}
			}
		}
	}}
}

// ZipStep pairs corresponding elements of two steppers, stopping at the
// shorter. Variable-length iterators are zipped sequentially this way
// (paper §3.2).
func ZipStep[A, B any](a Step[A], b Step[B]) Step[Pair[A, B]] {
	return Step[Pair[A, B]]{Gen: func() Cursor[Pair[A, B]] {
		ca, cb := a.Gen(), b.Gen()
		return func() (Pair[A, B], bool) {
			x, okA := ca()
			if !okA {
				return Pair[A, B]{}, false
			}
			y, okB := cb()
			if !okB {
				return Pair[A, B]{}, false
			}
			return Pair[A, B]{Fst: x, Snd: y}, true
		}
	}}
}

// ConcatMapStep expands each element into a sub-stepper and yields the
// concatenation (paper Fig. 2's concatMapStep). This is the stepper form of
// nested traversal; the paper notes it is reliably fusible but a constant
// factor slower than a loop nest, which is why the hybrid Iter prefers
// indexer-of-stepper nesting.
func ConcatMapStep[T, U any](f func(T) Step[U], s Step[T]) Step[U] {
	return Step[U]{Gen: func() Cursor[U] {
		outer := s.Gen()
		var inner Cursor[U]
		return func() (U, bool) {
			for {
				if inner != nil {
					if v, ok := inner(); ok {
						return v, true
					}
					inner = nil
				}
				o, ok := outer()
				if !ok {
					var zero U
					return zero, false
				}
				inner = f(o).Gen()
			}
		}
	}}
}

// TakeStep yields at most n elements of s.
func TakeStep[T any](n int, s Step[T]) Step[T] {
	return Step[T]{Gen: func() Cursor[T] {
		cur := s.Gen()
		remaining := n
		return func() (T, bool) {
			if remaining <= 0 {
				var zero T
				return zero, false
			}
			remaining--
			return cur()
		}
	}}
}

// FoldStep reduces the stepper left-to-right with worker w from z.
func FoldStep[T, A any](s Step[T], z A, w func(A, T) A) A {
	acc := z
	cur := s.Gen()
	for {
		v, ok := cur()
		if !ok {
			return acc
		}
		acc = w(acc, v)
	}
}

// StepToFold converts a stepper to the push-based fold encoding.
func StepToFold[T any](s Step[T]) Fold[T] {
	return func(yield func(T) bool) {
		cur := s.Gen()
		for {
			v, ok := cur()
			if !ok {
				return
			}
			if !yield(v) {
				return
			}
		}
	}
}

// StepToColl converts a stepper to a collector that pushes every element to
// the side-effecting worker (paper §3.1's stepToColl).
func StepToColl[T any](s Step[T]) Collector[T] {
	return func(w func(T)) {
		cur := s.Gen()
		for {
			v, ok := cur()
			if !ok {
				return
			}
			w(v)
		}
	}
}

// CountStep returns the number of elements the stepper yields.
func CountStep[T any](s Step[T]) int {
	n := 0
	cur := s.Gen()
	for {
		if _, ok := cur(); !ok {
			return n
		}
		n++
	}
}
