package iter

import (
	"testing"
	"testing/quick"
)

func TestFoldOf(t *testing.T) {
	got := ReduceFold(FoldOf([]int{1, 2, 3}), 0, func(a, v int) int { return a + v })
	if got != 6 {
		t.Fatalf("FoldOf sum = %d", got)
	}
}

func TestMapFold(t *testing.T) {
	fo := MapFold(func(x int) int { return x + 1 }, FoldOf([]int{1, 2}))
	got := ReduceFold(fo, 0, func(a, v int) int { return a*10 + v })
	if got != 23 {
		t.Fatalf("MapFold = %d", got)
	}
}

func TestFilterFold(t *testing.T) {
	fo := FilterFold(func(x int) bool { return x > 1 }, FoldOf([]int{1, 2, 3}))
	got := ReduceFold(fo, 0, func(a, v int) int { return a + v })
	if got != 5 {
		t.Fatalf("FilterFold = %d", got)
	}
}

func TestFilterFoldEarlyStopSkipsRest(t *testing.T) {
	calls := 0
	FilterFold(func(x int) bool { return x%2 == 0 }, FoldOf([]int{2, 4, 5, 6}))(func(v int) bool {
		calls++
		return v != 4
	})
	if calls != 2 { // 2 then 4, stop
		t.Fatalf("calls = %d", calls)
	}
}

func TestConcatMapFoldNests(t *testing.T) {
	rep := func(x int) Fold[int] {
		return func(yield func(int) bool) {
			for range x {
				if !yield(x) {
					return
				}
			}
		}
	}
	var got []int
	ConcatMapFold(rep, FoldOf([]int{2, 0, 3}))(func(v int) bool {
		got = append(got, v)
		return true
	})
	if !eqSlices(got, []int{2, 2, 3, 3, 3}) {
		t.Fatalf("ConcatMapFold = %v", got)
	}
}

func TestConcatMapFoldEarlyStopPropagates(t *testing.T) {
	outerCalls := 0
	src := func(yield func(int) bool) {
		for i := 1; i <= 10; i++ {
			outerCalls++
			if !yield(i) {
				return
			}
		}
	}
	inner := func(x int) Fold[int] { return FoldOf([]int{x, x}) }
	n := 0
	ConcatMapFold(inner, Fold[int](src))(func(int) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("consumed %d inner elements", n)
	}
	if outerCalls != 2 { // inner of 1 gives 2 elems, inner of 2 gives the 3rd
		t.Fatalf("outer advanced %d times, want 2", outerCalls)
	}
}

func TestFoldToColl(t *testing.T) {
	sum := 0
	FoldToColl(FoldOf([]int{1, 2, 3}))(func(v int) { sum += v })
	if sum != 6 {
		t.Fatalf("FoldToColl = %d", sum)
	}
}

func TestMapColl(t *testing.T) {
	c := MapColl(func(x int) int { return -x }, IdxToColl(IdxRange(3)))
	var got []int
	c.RunInto(&got)
	if !eqSlices(got, []int{0, -1, -2}) {
		t.Fatalf("MapColl = %v", got)
	}
}

func TestCollectorRunIntoCount(t *testing.T) {
	c := IdxToColl(IdxRange(4))
	if c.Count() != 4 {
		t.Fatalf("Count = %d", c.Count())
	}
	out := []int{99}
	c.RunInto(&out)
	if !eqSlices(out, []int{99, 0, 1, 2, 3}) {
		t.Fatalf("RunInto appended wrong: %v", out)
	}
}

// Property: fold pipelines agree with slice-level references.
func TestFoldPipelineAgainstReference(t *testing.T) {
	prop := func(xs []int16) bool {
		f := func(x int16) int32 { return int32(x) * 2 }
		p := func(x int32) bool { return x%3 == 0 }
		var got []int32
		FilterFold(p, MapFold(f, FoldOf(xs)))(func(v int32) bool {
			got = append(got, v)
			return true
		})
		var want []int32
		for _, x := range xs {
			if v := f(x); p(v) {
				want = append(want, v)
			}
		}
		return eqSlices(got, want)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
