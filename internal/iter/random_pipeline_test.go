package iter

import (
	"testing"
	"testing/quick"

	"triolet/internal/domain"
)

// Generative pipeline testing: random sequences of skeleton operations are
// applied simultaneously to an Iter and to a plain slice (the reference
// interpreter). Whatever the composition, the fused pipeline must agree
// with the slice semantics element-for-element, its Sum/Count consumers
// must agree, and — when the result is still splittable — block-split
// evaluation must recombine to the sequential result. This exercises the
// constructor case analysis (paper Fig. 2) across compositions no
// hand-written test enumerates.
//
// The op encoding and both interpreters live in pipegen.go, shared with the
// cross-mode differential oracle (internal/diffcheck).

func TestRandomPipelinesAgainstReference(t *testing.T) {
	prop := func(seed []int16, ops []PipeOp) bool {
		if len(ops) > 6 {
			ops = ops[:6] // concatMap chains can explode; bound depth
		}
		xs := make([]int64, len(seed))
		for i, v := range seed {
			xs[i] = int64(v % 100)
		}
		it := FromSlice(xs)
		ref := xs
		for _, op := range ops {
			it = ApplyPipeOp(op, it)
			ref = ApplyPipeOpRef(op, ref)
			if len(ref) > 50000 {
				return true // skip exploded cases
			}
		}
		got := ToSlice(it)
		if len(got) != len(ref) {
			t.Logf("length %d vs ref %d for ops %+v", len(got), len(ref), ops)
			return false
		}
		var sumGot, sumRef int64
		for i := range ref {
			if got[i] != ref[i] {
				t.Logf("element %d: %d vs %d for ops %+v", i, got[i], ref[i], ops)
				return false
			}
			sumRef += ref[i]
		}
		sumGot = Sum(it)
		if sumGot != sumRef {
			return false
		}
		if Count(it) != len(ref) {
			return false
		}
		// Split invariance for splittable results.
		if it.CanSplit() {
			n, _ := it.OuterLen()
			var split int64
			for _, r := range domain.BlockPartition(n, 3) {
				split += Sum(Split(it, r))
			}
			if split != sumRef {
				t.Logf("split sum %d vs %d for ops %+v", split, sumRef, ops)
				return false
			}
		}
		// The pipeline must be repeatable: a second traversal yields the
		// same elements (steppers must be restartable).
		again := ToSlice(it)
		if len(again) != len(ref) {
			return false
		}
		for i := range ref {
			if again[i] != ref[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// The same generative check through the fold path (Any-driven early
// termination must never change which elements exist).
func TestRandomPipelinesFindAgreesWithReference(t *testing.T) {
	prop := func(seed []int16, ops []PipeOp, probe int16) bool {
		if len(ops) > 5 {
			ops = ops[:5]
		}
		xs := make([]int64, len(seed))
		for i, v := range seed {
			xs[i] = int64(v % 50)
		}
		it := FromSlice(xs)
		ref := xs
		for _, op := range ops {
			it = ApplyPipeOp(op, it)
			ref = ApplyPipeOpRef(op, ref)
			if len(ref) > 20000 {
				return true
			}
		}
		target := int64(probe % 50)
		wantIdx := -1
		for i, v := range ref {
			if v == target {
				wantIdx = i
				break
			}
		}
		got, ok := Find(func(v int64) bool { return v == target }, it)
		if ok != (wantIdx >= 0) {
			return false
		}
		return !ok || got == target
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// BuildPipeline/RefPipeline must agree with op-by-op application (they are
// the forms diffcheck and the fuzz targets consume).
func TestPipelineHelpersAgreeWithStepwiseApplication(t *testing.T) {
	prop := func(seed []int16, ops []PipeOp) bool {
		if len(ops) > 6 {
			ops = ops[:6]
		}
		xs := make([]int64, len(seed))
		for i, v := range seed {
			xs[i] = int64(v % 100)
		}
		ref, ok := RefPipeline(xs, ops, 50000)
		if !ok {
			return true
		}
		got := ToSlice(BuildPipeline(xs, ops))
		if len(got) != len(ref) {
			return false
		}
		for i := range ref {
			if got[i] != ref[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
