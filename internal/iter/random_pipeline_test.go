package iter

import (
	"testing"
	"testing/quick"

	"triolet/internal/domain"
)

// Generative pipeline testing: random sequences of skeleton operations are
// applied simultaneously to an Iter and to a plain slice (the reference
// interpreter). Whatever the composition, the fused pipeline must agree
// with the slice semantics element-for-element, its Sum/Count consumers
// must agree, and — when the result is still splittable — block-split
// evaluation must recombine to the sequential result. This exercises the
// constructor case analysis (paper Fig. 2) across compositions no
// hand-written test enumerates.

// pipeOp is one randomly chosen operation, driven by two parameter bytes.
type pipeOp struct {
	Kind uint8
	A, B uint8
}

// applyIter applies the op to the iterator side.
func applyIter(op pipeOp, it Iter[int64]) Iter[int64] {
	switch op.Kind % 7 {
	case 0: // map: affine
		k := int64(op.A%5) + 1
		c := int64(op.B % 7)
		return Map(func(x int64) int64 { return k*x + c }, it)
	case 1: // filter: residue class
		m := int64(op.A%3) + 2
		r := int64(op.B) % m
		return Filter(func(x int64) bool { return ((x%m)+m)%m == r }, it)
	case 2: // concatMap: expand into |x| % k values
		k := int64(op.A%3) + 2
		return ConcatMap(func(x int64) Iter[int64] {
			n := int(((x % k) + k) % k)
			return Map(func(j int) int64 { return x + int64(j) }, Range(n))
		}, it)
	case 3: // take
		return Take(int(op.A%40), it)
	case 4: // drop
		return Drop(int(op.A%10), it)
	case 5: // chain a small constant block
		extra := []int64{int64(op.A), int64(op.B), -3}
		return Chain(it, FromSlice(extra))
	default: // scan (running sum)
		return Scan(it, int64(op.B%4), func(a, v int64) int64 { return a + v })
	}
}

// applyRef applies the same op to the reference slice.
func applyRef(op pipeOp, xs []int64) []int64 {
	switch op.Kind % 7 {
	case 0:
		k := int64(op.A%5) + 1
		c := int64(op.B % 7)
		out := make([]int64, len(xs))
		for i, x := range xs {
			out[i] = k*x + c
		}
		return out
	case 1:
		m := int64(op.A%3) + 2
		r := int64(op.B) % m
		var out []int64
		for _, x := range xs {
			if ((x%m)+m)%m == r {
				out = append(out, x)
			}
		}
		return out
	case 2:
		k := int64(op.A%3) + 2
		var out []int64
		for _, x := range xs {
			n := int(((x % k) + k) % k)
			for j := 0; j < n; j++ {
				out = append(out, x+int64(j))
			}
		}
		return out
	case 3:
		n := int(op.A % 40)
		if n > len(xs) {
			n = len(xs)
		}
		return xs[:n]
	case 4:
		n := int(op.A % 10)
		if n > len(xs) {
			n = len(xs)
		}
		return xs[n:]
	case 5:
		return append(append([]int64{}, xs...), int64(op.A), int64(op.B), -3)
	default:
		acc := int64(op.B % 4)
		out := make([]int64, len(xs))
		for i, x := range xs {
			acc += x
			out[i] = acc
		}
		return out
	}
}

func TestRandomPipelinesAgainstReference(t *testing.T) {
	prop := func(seed []int16, ops []pipeOp) bool {
		if len(ops) > 6 {
			ops = ops[:6] // concatMap chains can explode; bound depth
		}
		xs := make([]int64, len(seed))
		for i, v := range seed {
			xs[i] = int64(v % 100)
		}
		it := FromSlice(xs)
		ref := xs
		for _, op := range ops {
			it = applyIter(op, it)
			ref = applyRef(op, ref)
			if len(ref) > 50000 {
				return true // skip exploded cases
			}
		}
		got := ToSlice(it)
		if len(got) != len(ref) {
			t.Logf("length %d vs ref %d for ops %+v", len(got), len(ref), ops)
			return false
		}
		var sumGot, sumRef int64
		for i := range ref {
			if got[i] != ref[i] {
				t.Logf("element %d: %d vs %d for ops %+v", i, got[i], ref[i], ops)
				return false
			}
			sumRef += ref[i]
		}
		sumGot = Sum(it)
		if sumGot != sumRef {
			return false
		}
		if Count(it) != len(ref) {
			return false
		}
		// Split invariance for splittable results.
		if it.CanSplit() {
			n, _ := it.OuterLen()
			var split int64
			for _, r := range domain.BlockPartition(n, 3) {
				split += Sum(Split(it, r))
			}
			if split != sumRef {
				t.Logf("split sum %d vs %d for ops %+v", split, sumRef, ops)
				return false
			}
		}
		// The pipeline must be repeatable: a second traversal yields the
		// same elements (steppers must be restartable).
		again := ToSlice(it)
		if len(again) != len(ref) {
			return false
		}
		for i := range ref {
			if again[i] != ref[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// The same generative check through the fold path (Any-driven early
// termination must never change which elements exist).
func TestRandomPipelinesFindAgreesWithReference(t *testing.T) {
	prop := func(seed []int16, ops []pipeOp, probe int16) bool {
		if len(ops) > 5 {
			ops = ops[:5]
		}
		xs := make([]int64, len(seed))
		for i, v := range seed {
			xs[i] = int64(v % 50)
		}
		it := FromSlice(xs)
		ref := xs
		for _, op := range ops {
			it = applyIter(op, it)
			ref = applyRef(op, ref)
			if len(ref) > 20000 {
				return true
			}
		}
		target := int64(probe % 50)
		wantIdx := -1
		for i, v := range ref {
			if v == target {
				wantIdx = i
				break
			}
		}
		got, ok := Find(func(v int64) bool { return v == target }, it)
		if ok != (wantIdx >= 0) {
			return false
		}
		return !ok || got == target
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
