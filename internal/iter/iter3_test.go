package iter

import (
	"testing"
	"testing/quick"

	"triolet/internal/domain"
)

func TestArrayRange3AndBuild3(t *testing.T) {
	d := domain.Dim3{D: 2, H: 3, W: 4}
	it := Map3(func(ix domain.Ix3) int { return d.Linear(ix) }, ArrayRange3(d))
	got := Build3(it)
	for i, v := range got {
		if v != i {
			t.Fatalf("grid[%d] = %d", i, v)
		}
	}
	if it.Dom() != d {
		t.Fatalf("dom = %v", it.Dom())
	}
	if it.At(1, 2, 3) != d.Size()-1 {
		t.Fatalf("At corner = %d", it.At(1, 2, 3))
	}
}

func TestZipWith3D(t *testing.T) {
	a := ArrayRange3(domain.Dim3{D: 2, H: 2, W: 3})
	b := ArrayRange3(domain.Dim3{D: 3, H: 2, W: 2})
	z := ZipWith3D(func(p, q domain.Ix3) int { return p.X + q.X }, a, b)
	if z.Dom() != (domain.Dim3{D: 2, H: 2, W: 2}) {
		t.Fatalf("intersection dom = %v", z.Dom())
	}
	if z.At(0, 0, 1) != 2 {
		t.Fatalf("zip at = %d", z.At(0, 0, 1))
	}
}

func TestSliceBox(t *testing.T) {
	d := domain.Dim3{D: 4, H: 4, W: 4}
	it := Map3(func(ix domain.Ix3) int { return d.Linear(ix) }, ArrayRange3(d))
	sub := SliceBox(it, domain.Box{
		Z: domain.Range{Lo: 1, Hi: 3},
		Y: domain.Range{Lo: 2, Hi: 4},
		X: domain.Range{Lo: 0, Hi: 2},
	})
	if sub.Dom() != (domain.Dim3{D: 2, H: 2, W: 2}) {
		t.Fatalf("slice dom = %v", sub.Dom())
	}
	if sub.At(0, 0, 0) != d.Linear(domain.Ix3{Z: 1, Y: 2, X: 0}) {
		t.Fatalf("rebased At = %d", sub.At(0, 0, 0))
	}
}

func TestSliceBoxOutsidePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SliceBox(ArrayRange3(domain.Dim3{D: 2, H: 2, W: 2}), domain.Box{
		Z: domain.Range{Lo: 0, Hi: 3},
		Y: domain.Range{Lo: 0, Hi: 2},
		X: domain.Range{Lo: 0, Hi: 2},
	})
}

func TestLinearize3AndReduce3Agree(t *testing.T) {
	d := domain.Dim3{D: 3, H: 2, W: 5}
	it := Map3(func(ix domain.Ix3) int { return ix.Z*100 + ix.Y*10 + ix.X }, ArrayRange3(d))
	viaLin := Sum(Linearize3(it))
	viaRed := Reduce3(it, 0, func(a, v int) int { return a + v })
	if viaLin != viaRed {
		t.Fatalf("linearize %d != reduce3 %d", viaLin, viaRed)
	}
	if got := ToSlice(Linearize3(it)); got[d.Linear(domain.Ix3{Z: 2, Y: 1, X: 4})] != 214 {
		t.Fatalf("linearize order wrong: %v", got)
	}
}

// Property: building slab-by-slab equals building whole.
func TestBuild3IntoSlabs(t *testing.T) {
	prop := func(d0, h0, w0, p0 uint8) bool {
		d := domain.Dim3{D: int(d0%6) + 1, H: int(h0%6) + 1, W: int(w0%6) + 1}
		p := int(p0%4) + 1
		it := Map3(func(ix domain.Ix3) int { return d.Linear(ix) * 3 }, ArrayRange3(d))
		whole := Build3(it)
		slabbed := make([]int, d.Size())
		for _, b := range d.SlabPartition(p) {
			Build3Into(slabbed, it, b)
		}
		for i := range whole {
			if whole[i] != slabbed[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPar3Hints(t *testing.T) {
	it := ArrayRange3(domain.Dim3{D: 1, H: 1, W: 1})
	if it.Hint() != Sequential {
		t.Fatal("default hint wrong")
	}
	if Par3(it).Hint() != ClusterPar || LocalPar3(it).Hint() != NodePar {
		t.Fatal("3-D hint setters wrong")
	}
	if Map3(func(ix domain.Ix3) int { return 0 }, Par3(it)).Hint() != ClusterPar {
		t.Fatal("Map3 dropped hint")
	}
	if Linearize3(LocalPar3(it)).Hint() != NodePar {
		t.Fatal("Linearize3 dropped hint")
	}
}

func TestBoxHelpers(t *testing.T) {
	b := domain.Box{
		Z: domain.Range{Lo: 0, Hi: 2},
		Y: domain.Range{Lo: 1, Hi: 3},
		X: domain.Range{Lo: 0, Hi: 1},
	}
	if b.Size() != 4 || b.Empty() {
		t.Fatalf("box size = %d", b.Size())
	}
	if !b.Contains(domain.Ix3{Z: 1, Y: 2, X: 0}) || b.Contains(domain.Ix3{Z: 2, Y: 1, X: 0}) {
		t.Fatal("box Contains wrong")
	}
	inter := b.Intersect(domain.Box{
		Z: domain.Range{Lo: 1, Hi: 5},
		Y: domain.Range{Lo: 0, Hi: 2},
		X: domain.Range{Lo: 0, Hi: 9},
	})
	if inter.Size() != 1 {
		t.Fatalf("intersection = %v", inter)
	}
	// Slabs tile the domain.
	d := domain.Dim3{D: 7, H: 2, W: 2}
	total := 0
	for _, s := range d.SlabPartition(3) {
		total += s.Size()
	}
	if total != d.Size() {
		t.Fatalf("slabs cover %d of %d", total, d.Size())
	}
}
