package iter

import "testing"

// These tests back the Figure 1 feature matrix with behaviour: for each
// "yes" cell there is a working demonstration in this package, and for the
// load-bearing "no" cells the hybrid Iter shows how the limitation is
// worked around.

func TestFeatureMatrixShape(t *testing.T) {
	m := FeatureMatrix()
	if len(m) != 4 {
		t.Fatalf("matrix has %d rows", len(m))
	}
	names := []string{"Indexer", "Stepper", "Fold", "Collector"}
	for i, r := range m {
		if r.Encoding != names[i] {
			t.Errorf("row %d = %s, want %s", i, r.Encoding, names[i])
		}
	}
	if m[0].Parallel != Yes || m[1].Parallel != No || m[2].Parallel != No || m[3].Parallel != No {
		t.Error("Parallel column wrong")
	}
	if m[0].Zip != Yes || m[1].Zip != Yes || m[2].Zip != No || m[3].Zip != No {
		t.Error("Zip column wrong")
	}
	if m[0].Filter != No || m[1].Filter != Yes || m[2].Filter != Yes || m[3].Filter != Yes {
		t.Error("Filter column wrong")
	}
	if m[0].Nested != No || m[1].Nested != Slow || m[2].Nested != Yes || m[3].Nested != Yes {
		t.Error("Nested column wrong")
	}
	if m[0].Mutation != No || m[1].Mutation != No || m[2].Mutation != No || m[3].Mutation != Yes {
		t.Error("Mutation column wrong")
	}
}

func TestSupportString(t *testing.T) {
	if No.String() != "no" || Slow.String() != "slow" || Yes.String() != "yes" || Support(9).String() != "?" {
		t.Fatal("Support.String wrong")
	}
}

// Indexer: Parallel=yes — disjoint slices of an indexer can be consumed
// independently and recombined (no shared cursor state).
func TestIndexerParallelCapability(t *testing.T) {
	ix := MapIdx(func(x int) int { return x * x }, IdxRange(100))
	lo := FoldIdx(SliceIdx(ix, 0, 50), 0, func(a, v int) int { return a + v })
	hi := FoldIdx(SliceIdx(ix, 50, 100), 0, func(a, v int) int { return a + v })
	all := FoldIdx(ix, 0, func(a, v int) int { return a + v })
	if lo+hi != all {
		t.Fatalf("slice sums %d+%d != %d", lo, hi, all)
	}
}

// Stepper: Zip=yes even for variable-length producers, which indexers
// cannot express at all.
func TestStepperZipCapability(t *testing.T) {
	odds := FilterStep(func(x int) bool { return x%2 == 1 }, IdxToStep(IdxRange(10)))
	squares := MapStep(func(x int) int { return x * x }, IdxToStep(IdxRange(5)))
	got := drain(ZipStep(odds, squares))
	want := []Pair[int, int]{{1, 0}, {3, 1}, {5, 4}, {7, 9}, {9, 16}}
	if len(got) != len(want) {
		t.Fatalf("zip = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("zip[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// Fold: Nested=yes — nested folds are plain nested loops with no cursor
// bookkeeping (the reason Iter consumes nesting levels through folds).
func TestFoldNestedCapability(t *testing.T) {
	triangle := func(n int) Fold[int] {
		return func(yield func(int) bool) {
			for i := range n {
				if !yield(i) {
					return
				}
			}
		}
	}
	got := ReduceFold(ConcatMapFold(triangle, FoldOf([]int{3, 4})), 0,
		func(a, v int) int { return a + v })
	if got != 0+1+2+0+1+2+3 {
		t.Fatalf("nested fold = %d", got)
	}
}

// Collector: Mutation=yes — the worker may update shared state in place,
// which is how histogramming works.
func TestCollectorMutationCapability(t *testing.T) {
	bins := make([]int, 3)
	IdxToColl(IdxOf([]int{0, 2, 2, 1}))(func(b int) { bins[b]++ })
	if bins[0] != 1 || bins[1] != 1 || bins[2] != 2 {
		t.Fatalf("bins = %v", bins)
	}
}

// The hybrid's reason to exist: filter over an indexer is impossible to
// express as an indexer (Filter "no" in row 1) but the Iter wrapper
// produces an indexer *of steppers*, restoring both filterability and
// partitionability.
func TestHybridWorksAroundIndexerFilterLimitation(t *testing.T) {
	it := Filter(func(x int) bool { return x%3 == 0 }, Range(30))
	// KIdxFilter is the simplified form of the indexer-of-steppers nest;
	// the load-bearing property is that it still splits.
	if it.Kind() != KIdxFilter || !it.CanSplit() {
		t.Fatalf("hybrid filter: kind=%v canSplit=%v", it.Kind(), it.CanSplit())
	}
	if got := Count(it); got != 10 {
		t.Fatalf("Count = %d", got)
	}
}
