package iter

import (
	"fmt"

	"triolet/internal/domain"
)

// Three-dimensional iterators: the Dim3 instance of the paper's
// domain-generalized indexer (§3.3). As with Dim2, only the flat indexer
// constructor generalizes — variable-length traversals do not preserve
// dimensionality — so Iter3 is an indexer plus a parallelism hint. cutcp's
// potential grid is a Dim3 loop.

// Idx3 is a three-dimensional indexer over a Dim3 domain.
type Idx3[T any] struct {
	Dom domain.Dim3
	At  func(z, y, x int) T
}

// Iter3 is the three-dimensional iterator.
type Iter3[T any] struct {
	idx  Idx3[T]
	hint ParHint
}

// Idx3Flat wraps a 3-D indexer as a 3-D iterator.
func Idx3Flat[T any](ix Idx3[T]) Iter3[T] { return Iter3[T]{idx: ix} }

// Dom reports the iterator's index domain.
func (it Iter3[T]) Dom() domain.Dim3 { return it.idx.Dom }

// Hint reports the iterator's parallelism hint.
func (it Iter3[T]) Hint() ParHint { return it.hint }

// At computes the element at (z, y, x).
func (it Iter3[T]) At(z, y, x int) T { return it.idx.At(z, y, x) }

// Par3 marks a 3-D iterator for distributed + thread parallelism.
func Par3[T any](it Iter3[T]) Iter3[T] { it.hint = ClusterPar; return it }

// LocalPar3 marks a 3-D iterator for thread parallelism within one node.
func LocalPar3[T any](it Iter3[T]) Iter3[T] { it.hint = NodePar; return it }

// ArrayRange3 iterates over all (z, y, x) index triples of the domain in
// linearization order.
func ArrayRange3(d domain.Dim3) Iter3[domain.Ix3] {
	return Idx3Flat(Idx3[domain.Ix3]{Dom: d, At: func(z, y, x int) domain.Ix3 {
		return domain.Ix3{Z: z, Y: y, X: x}
	}})
}

// Map3 applies f to every element of a 3-D iterator.
func Map3[T, U any](f func(T) U, it Iter3[T]) Iter3[U] {
	at := it.idx.At
	out := Idx3Flat(Idx3[U]{Dom: it.idx.Dom, At: func(z, y, x int) U { return f(at(z, y, x)) }})
	out.hint = it.hint
	return out
}

// ZipWith3D combines corresponding elements of two 3-D iterators over the
// intersection of their domains.
func ZipWith3D[A, B, C any](f func(A, B) C, a Iter3[A], b Iter3[B]) Iter3[C] {
	atA, atB := a.idx.At, b.idx.At
	dom := domain.Dim3{
		D: min(a.idx.Dom.D, b.idx.Dom.D),
		H: min(a.idx.Dom.H, b.idx.Dom.H),
		W: min(a.idx.Dom.W, b.idx.Dom.W),
	}
	out := Idx3Flat(Idx3[C]{Dom: dom, At: func(z, y, x int) C {
		return f(atA(z, y, x), atB(z, y, x))
	}})
	out.hint = mergeHint(a.hint, b.hint)
	return out
}

// SliceBox restricts a 3-D iterator to the box b, re-basing indices at the
// origin. Slab-decomposed parallel loops hand each task a SliceBox.
func SliceBox[T any](it Iter3[T], b domain.Box) Iter3[T] {
	d := it.idx.Dom
	if b.Z.Lo < 0 || b.Z.Hi > d.D || b.Y.Lo < 0 || b.Y.Hi > d.H || b.X.Lo < 0 || b.X.Hi > d.W {
		panic(fmt.Sprintf("iter: SliceBox %v outside %v", b, d))
	}
	at := it.idx.At
	out := Idx3Flat(Idx3[T]{
		Dom: domain.Dim3{D: b.Z.Len(), H: b.Y.Len(), W: b.X.Len()},
		At:  func(z, y, x int) T { return at(b.Z.Lo+z, b.Y.Lo+y, b.X.Lo+x) },
	})
	out.hint = it.hint
	return out
}

// Linearize3 flattens a 3-D iterator to a 1-D iterator in linearization
// order, so 1-D consumers apply.
func Linearize3[T any](it Iter3[T]) Iter[T] {
	d := it.idx.Dom
	at := it.idx.At
	out := IdxFlat(Idx[T]{N: d.Size(), At: func(i int) T {
		ix := d.Unlinear(i)
		return at(ix.Z, ix.Y, ix.X)
	}})
	out.hint = it.hint
	return out
}

// Reduce3 folds all elements in linearization order.
func Reduce3[T, A any](it Iter3[T], z A, w func(A, T) A) A {
	d := it.idx.Dom
	at := it.idx.At
	acc := z
	for zz := 0; zz < d.D; zz++ {
		for yy := 0; yy < d.H; yy++ {
			for xx := 0; xx < d.W; xx++ {
				acc = w(acc, at(zz, yy, xx))
			}
		}
	}
	return acc
}

// Build3Into evaluates the box b of the iterator into the matching region
// of the flat grid dst (dst is it.Dom()-shaped, linearized). Disjoint
// boxes may be evaluated concurrently.
func Build3Into[T any](dst []T, it Iter3[T], b domain.Box) {
	d := it.idx.Dom
	at := it.idx.At
	for z := b.Z.Lo; z < b.Z.Hi; z++ {
		for y := b.Y.Lo; y < b.Y.Hi; y++ {
			base := (z*d.H + y) * d.W
			for x := b.X.Lo; x < b.X.Hi; x++ {
				dst[base+x] = at(z, y, x)
			}
		}
	}
}

// Build3 materializes the whole 3-D iterator into a fresh linearized grid.
func Build3[T any](it Iter3[T]) []T {
	d := it.idx.Dom
	out := make([]T, d.Size())
	Build3Into(out, it, d.Whole())
	return out
}
