// Package iter implements Triolet's hybrid fusible iterators (paper §3).
//
// Four virtual data structure encodings (paper Fig. 1) are provided:
//
//   - Idx (indexer): size + random-access lookup. Parallelizable and
//     zippable, but cannot encode variable-output loops.
//   - Step (stepper): a restartable cursor yielding one element at a time.
//     Zippable and filterable, sequential only.
//   - Fold: push-based traversal driving a worker function; supports nested
//     traversal but no zip.
//   - Collector: an imperative fold whose worker mutates state (used for
//     histogramming and packing variable-length output).
//
// The hybrid Iter type (iter.go) combines indexers and steppers at each
// nesting level so irregular loops (Filter, ConcatMap) fuse with consumers
// (Sum, Reduce, Collect, histograms) while preserving outer-loop
// parallelism — the paper's central mechanism. Where the Triolet compiler
// performed constructor-aware inlining, this package performs the same
// case analysis at iterator-construction time; the composed closures are
// the fused loop bodies.
package iter

import "fmt"

// Idx is the indexer encoding: a virtual collection of N elements where
// element i is computed by At(i). Because any element can be retrieved
// independently, indexers can be split across parallel tasks and zipped.
type Idx[T any] struct {
	N  int
	At func(i int) T
}

// IdxOf wraps a slice as an indexer without copying.
func IdxOf[T any](xs []T) Idx[T] {
	return Idx[T]{N: len(xs), At: func(i int) T { return xs[i] }}
}

// IdxRange is the indexer of the integers [0, n).
func IdxRange(n int) Idx[int] {
	if n < 0 {
		panic(fmt.Sprintf("iter: IdxRange(%d)", n))
	}
	return Idx[int]{N: n, At: func(i int) int { return i }}
}

// MapIdx builds the indexer whose lookup applies f after ix's lookup —
// straight-line code, so composition fuses (paper §3.1 "Indexers").
func MapIdx[T, U any](f func(T) U, ix Idx[T]) Idx[U] {
	return Idx[U]{N: ix.N, At: func(i int) U { return f(ix.At(i)) }}
}

// ZipIdx pairs elements at corresponding indices; the result covers the
// intersection (shorter) of the two domains.
func ZipIdx[A, B any](a Idx[A], b Idx[B]) Idx[Pair[A, B]] {
	return Idx[Pair[A, B]]{
		N:  min(a.N, b.N),
		At: func(i int) Pair[A, B] { return Pair[A, B]{Fst: a.At(i), Snd: b.At(i)} },
	}
}

// ZipWithIdx combines elements at corresponding indices with f.
func ZipWithIdx[A, B, C any](f func(A, B) C, a Idx[A], b Idx[B]) Idx[C] {
	return Idx[C]{
		N:  min(a.N, b.N),
		At: func(i int) C { return f(a.At(i), b.At(i)) },
	}
}

// SliceIdx restricts an indexer to the sub-range [lo, hi), re-basing
// indices at zero. Parallel partitioning hands each task a SliceIdx.
func SliceIdx[T any](ix Idx[T], lo, hi int) Idx[T] {
	if lo < 0 || hi > ix.N || lo > hi {
		panic(fmt.Sprintf("iter: SliceIdx[%d,%d) of %d", lo, hi, ix.N))
	}
	return Idx[T]{N: hi - lo, At: func(i int) T { return ix.At(lo + i) }}
}

// FoldIdx reduces the indexer left-to-right with worker w from initial
// accumulator z. This is the idxToFold conversion of paper §3.3.
func FoldIdx[T, A any](ix Idx[T], z A, w func(A, T) A) A {
	acc := z
	for i := 0; i < ix.N; i++ {
		acc = w(acc, ix.At(i))
	}
	return acc
}

// IdxToStep converts an indexer to a stepper that yields elements in index
// order (paper Fig. 2's idxToStep). The conversion loses parallelism but
// gains filterability.
func IdxToStep[T any](ix Idx[T]) Step[T] {
	return Step[T]{Gen: func() Cursor[T] {
		i := 0
		return func() (T, bool) {
			if i >= ix.N {
				var zero T
				return zero, false
			}
			v := ix.At(i)
			i++
			return v, true
		}
	}}
}

// IdxToFold converts an indexer to the push-based fold encoding.
func IdxToFold[T any](ix Idx[T]) Fold[T] {
	return func(yield func(T) bool) {
		for i := 0; i < ix.N; i++ {
			if !yield(ix.At(i)) {
				return
			}
		}
	}
}

// IdxToColl converts an indexer to a collector that pushes every element to
// the side-effecting worker (paper §3.1 idxToColl). The conversion removes
// the potential for parallelization.
func IdxToColl[T any](ix Idx[T]) Collector[T] {
	return func(w func(T)) {
		for i := 0; i < ix.N; i++ {
			w(ix.At(i))
		}
	}
}

// Pair is an anonymous product; Zip produces Pairs.
type Pair[A, B any] struct {
	Fst A
	Snd B
}

// Triple is a three-way product; Zip3 produces Triples.
type Triple[A, B, C any] struct {
	Fst A
	Snd B
	Trd C
}
