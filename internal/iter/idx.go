// Package iter implements Triolet's hybrid fusible iterators (paper §3).
//
// Four virtual data structure encodings (paper Fig. 1) are provided:
//
//   - Idx (indexer): size + random-access lookup. Parallelizable and
//     zippable, but cannot encode variable-output loops.
//   - Step (stepper): a restartable cursor yielding one element at a time.
//     Zippable and filterable, sequential only.
//   - Fold: push-based traversal driving a worker function; supports nested
//     traversal but no zip.
//   - Collector: an imperative fold whose worker mutates state (used for
//     histogramming and packing variable-length output).
//
// The hybrid Iter type (iter.go) combines indexers and steppers at each
// nesting level so irregular loops (Filter, ConcatMap) fuse with consumers
// (Sum, Reduce, Collect, histograms) while preserving outer-loop
// parallelism — the paper's central mechanism. Where the Triolet compiler
// performed constructor-aware inlining, this package performs the same
// case analysis at iterator-construction time; the composed closures are
// the fused loop bodies.
package iter

import "fmt"

// Idx is the indexer encoding: a virtual collection of N elements where
// element i is computed by At(i). Because any element can be retrieved
// independently, indexers can be split across parallel tasks and zipped.
//
// At is always valid. The unexported fast pointer carries the block
// engine's fast paths (see block.go): a slice view of the elements, a
// block-kernel generator, or a map chain over a source array. Constructors
// in this package maintain it so pipelines over slices stay on the fast
// path through Map/Zip/Slice composition, while At-only indexers — in
// particular the per-element inner loops ConcatMap constructs by the
// thousand — stay three words and allocate nothing.
type Idx[T any] struct {
	N    int
	At   func(i int) T
	fast *idxFast[T]
}

// IdxOf wraps a slice as an indexer without copying. The indexer remembers
// its backing array, so consumers iterate it with a tight loop instead of
// per-element At calls.
func IdxOf[T any](xs []T) Idx[T] {
	return Idx[T]{N: len(xs), At: func(i int) T { return xs[i] }, fast: &idxFast[T]{back: xs}}
}

// IdxRange is the indexer of the integers [0, n). Ranges shorter than
// blockMin stay At-only: no consumer drives blocks that short, and the tiny
// ranges ConcatMap feeds to inner pipelines should not pay an allocation.
func IdxRange(n int) Idx[int] {
	if n < 0 {
		panic(fmt.Sprintf("iter: IdxRange(%d)", n))
	}
	out := Idx[int]{N: n, At: func(i int) int { return i }}
	if n >= blockMin {
		out.fast = &idxFast[int]{fill: func() fillFn[int] {
			return func(dst []int, base int) {
				for i := range dst {
					dst[i] = base + i
				}
			}
		}}
	}
	return out
}

// MapIdx builds the indexer whose lookup applies f after ix's lookup —
// straight-line code, so composition fuses (paper §3.1 "Indexers"). Over a
// slice-backed or block-capable input the composition is a block kernel:
// one call to f per element, no wrapper-closure chain. When the source
// carries a fused-reduction builder (slice-backed or a zip of slices), the
// result additionally carries a fused Sum kernel and its own builder for
// further map stages (see fuse.go).
func MapIdx[T, U any](f func(T) U, ix Idx[T]) Idx[U] {
	out := mapIdxBase(f, ix)
	// Fusion attaches only to sources worth block-driving: below blockMin
	// the extra closures would be dead weight on ConcatMap's per-element
	// inner pipelines.
	if ix.fast != nil && ix.N >= blockMin {
		if srcMk := sourceMkRed(ix.fast); srcMk != nil {
			if out.fast == nil {
				out.fast = &idxFast[U]{}
			}
			out.fast.red = srcMk(any(f))
			out.fast.mkRed = func(g any) any { return composeMkRed(srcMk, f, g) }
		}
	}
	return out
}

// mapIdxBase is MapIdx minus the fused-reduction attachment: it builds the
// lookup and the staged block kernels.
func mapIdxBase[T, U any](f func(T) U, ix Idx[T]) Idx[U] {
	// Capture ix.At alone, not ix: the closure then holds two words instead
	// of the whole Idx struct, which matters when ConcatMap constructs one of
	// these per outer element.
	at := ix.At
	out := Idx[U]{N: ix.N, At: func(i int) U { return f(at(i)) }}
	if back := ix.backing(); back != nil {
		out.At = func(i int) U { return f(back[i]) }
		fast := &idxFast[U]{fill: func() fillFn[U] {
			return func(dst []U, base int) {
				for i, v := range back[base : base+len(dst)] {
					dst[i] = f(v)
				}
			}
		}}
		// When T == U (detected dynamically — the assertions succeed only for
		// identical type arguments) the result is a one-stage map chain over
		// the backing array, which single-pass consumers extend and fuse.
		if src, ok := any(back).([]U); ok {
			if ff, ok := any(f).(func(U) U); ok {
				fast.mapSrc, fast.mapFns = src, []func(U) U{ff}
			}
		}
		out.fast = fast
		return out
	}
	if mapSrc, mapFns := ix.chain(); mapSrc != nil {
		if ff, ok := any(f).(func(U) U); ok {
			// Same element type: extend the chain. ix has type Idx[U] here, so
			// the remaining assertions cannot fail.
			src := any(mapSrc).([]U)
			prev := any(mapFns).([]func(U) U)
			fns := make([]func(U) U, len(prev)+1)
			copy(fns, prev)
			fns[len(prev)] = ff
			out.fast = &idxFast[U]{
				mapSrc: src,
				mapFns: fns,
				fill:   mapChainFill(src, fns),
			}
			return out
		}
		// Type change ends the chain; compose block kernels below instead.
	}
	// Sub-blockMin sources skip kernel construction entirely: no consumer
	// drives blocks that short, so the generator closure would be one more
	// dead allocation on ConcatMap's per-element inner pipelines.
	if gen := ix.fillGen(); gen != nil && ix.N >= blockMin {
		// When T == U the map transforms each block in place in the
		// consumer's buffer, skipping the scratch buffer and its extra pass.
		if sameGen, ok := any(gen).(func() fillFn[U]); ok {
			if ff, ok := any(f).(func(U) U); ok {
				out.fast = &idxFast[U]{fill: func() fillFn[U] {
					read := sameGen()
					return func(dst []U, base int) {
						read(dst, base)
						for i, v := range dst {
							dst[i] = ff(v)
						}
					}
				}}
				return out
			}
		}
		out.fast = &idxFast[U]{fill: func() fillFn[U] {
			read := gen()
			var scratch []T
			return func(dst []U, base int) {
				s := ensure(&scratch, len(dst))
				read(s, base)
				for i, v := range s {
					dst[i] = f(v)
				}
			}
		}}
	}
	return out
}

// ZipIdx pairs elements at corresponding indices; the result covers the
// intersection (shorter) of the two domains. The block kernel constructs
// pairs inline — unlike ZipWithIdx with a pair-building closure, it costs
// no indirect call per element.
func ZipIdx[A, B any](a Idx[A], b Idx[B]) Idx[Pair[A, B]] {
	out := Idx[Pair[A, B]]{
		N:  min(a.N, b.N),
		At: func(i int) Pair[A, B] { return Pair[A, B]{Fst: a.At(i), Snd: b.At(i)} },
	}
	if xa, xb := a.backing(), b.backing(); xa != nil && xb != nil {
		out.fast = &idxFast[Pair[A, B]]{fill: func() fillFn[Pair[A, B]] {
			return func(dst []Pair[A, B], base int) {
				va := xa[base : base+len(dst)]
				vb := xb[base : base+len(dst)]
				for i := range dst {
					dst[i] = Pair[A, B]{Fst: va[i], Snd: vb[i]}
				}
			}
		}}
		if out.N >= blockMin {
			// A map over this zip reduces with pairs built inline from both
			// backing arrays — the fused dot-product shape.
			out.fast.mkRed = func(g any) any { return pairRed(g, xa, xb) }
		}
		return out
	}
	ra, rb := a.reader(), b.reader()
	if ra != nil && rb != nil {
		out.fast = &idxFast[Pair[A, B]]{fill: func() fillFn[Pair[A, B]] {
			ga, gb := ra(), rb()
			var sa []A
			var sb []B
			return func(dst []Pair[A, B], base int) {
				va := ensure(&sa, len(dst))
				vb := ensure(&sb, len(dst))
				ga(va, base)
				gb(vb, base)
				for i := range dst {
					dst[i] = Pair[A, B]{Fst: va[i], Snd: vb[i]}
				}
			}
		}}
	}
	return out
}

// ZipWithIdx combines elements at corresponding indices with f. Two
// slice-backed operands compose into a block kernel reading both backing
// arrays directly; other block-capable operands stage through per-traversal
// scratch buffers.
func ZipWithIdx[A, B, C any](f func(A, B) C, a Idx[A], b Idx[B]) Idx[C] {
	out := Idx[C]{
		N:  min(a.N, b.N),
		At: func(i int) C { return f(a.At(i), b.At(i)) },
	}
	if xa, xb := a.backing(), b.backing(); xa != nil && xb != nil {
		out.fast = &idxFast[C]{fill: func() fillFn[C] {
			return func(dst []C, base int) {
				va := xa[base : base+len(dst)]
				vb := xb[base : base+len(dst)]
				for i := range dst {
					dst[i] = f(va[i], vb[i])
				}
			}
		}}
		if out.N >= blockMin {
			// Numeric results reduce straight off both backing arrays; a
			// following map stage composes into the same kernel shape.
			out.fast.red = zipRed(f, xa, xb)
			out.fast.mkRed = func(g any) any { return zipMapRed(g, f, xa, xb) }
		}
		return out
	}
	ra, rb := a.reader(), b.reader()
	if ra != nil && rb != nil {
		out.fast = &idxFast[C]{fill: func() fillFn[C] {
			ga, gb := ra(), rb()
			var sa []A
			var sb []B
			return func(dst []C, base int) {
				va := ensure(&sa, len(dst))
				vb := ensure(&sb, len(dst))
				ga(va, base)
				gb(vb, base)
				for i := range dst {
					dst[i] = f(va[i], vb[i])
				}
			}
		}}
	}
	return out
}

// SliceIdx restricts an indexer to the sub-range [lo, hi), re-basing
// indices at zero. Parallel partitioning hands each task a SliceIdx; both
// fast paths survive restriction (a slice view of a slice is a slice, and a
// block kernel re-bases by offsetting), so per-task traversals in a
// work-stealing loop run the same block kernels as the sequential whole.
func SliceIdx[T any](ix Idx[T], lo, hi int) Idx[T] {
	if lo < 0 || hi > ix.N || lo > hi {
		panic(fmt.Sprintf("iter: SliceIdx[%d,%d) of %d", lo, hi, ix.N))
	}
	if back := ix.backing(); back != nil {
		return IdxOf(back[lo:hi:hi])
	}
	out := Idx[T]{N: hi - lo, At: func(i int) T { return ix.At(lo + i) }}
	if mapSrc, mapFns := ix.chain(); mapSrc != nil {
		// Slicing a map chain slices its source; the chain stays single-pass.
		src := mapSrc[lo:hi:hi]
		out.fast = &idxFast[T]{
			mapSrc: src,
			mapFns: mapFns,
			fill:   mapChainFill(src, mapFns),
		}
		return out
	}
	if gen := ix.fillGen(); gen != nil {
		out.fast = &idxFast[T]{fill: func() fillFn[T] {
			read := gen()
			return func(dst []T, base int) { read(dst, base+lo) }
		}}
	}
	// Fused kernels survive restriction by index offset, so per-task
	// traversals of a parallel split reduce with the same fused loops as
	// the sequential whole.
	if ix.fast != nil && (ix.fast.red != nil || ix.fast.mkRed != nil) {
		if out.fast == nil {
			out.fast = &idxFast[T]{}
		}
		if ix.fast.red != nil {
			out.fast.red = rebaseRed(ix.fast.red, lo)
		}
		if mk := ix.fast.mkRed; mk != nil {
			out.fast.mkRed = func(g any) any {
				if r := mk(g); r != nil {
					return rebaseRed(r, lo)
				}
				return nil
			}
		}
	}
	return out
}

// FoldIdx reduces the indexer left-to-right with worker w from initial
// accumulator z. This is the idxToFold conversion of paper §3.3. Slice-
// backed indexers fold over the backing array; block-capable ones pull
// BlockSize elements per kernel call into a reused buffer.
func FoldIdx[T, A any](ix Idx[T], z A, w func(A, T) A) A {
	acc := z
	if mapSrc, mapFns := ix.chain(); blockDriverEnabled && mapSrc != nil {
		switch len(mapFns) {
		case 1:
			f0 := mapFns[0]
			for _, v := range mapSrc {
				acc = w(acc, f0(v))
			}
		case 2:
			f0, f1 := mapFns[0], mapFns[1]
			for _, v := range mapSrc {
				acc = w(acc, f1(f0(v)))
			}
		default:
			for _, v := range mapSrc {
				for _, f := range mapFns {
					v = f(v)
				}
				acc = w(acc, v)
			}
		}
		return acc
	}
	if back := ix.backing(); blockDriverEnabled && back != nil {
		for _, v := range back {
			acc = w(acc, v)
		}
		return acc
	}
	if gen := ix.fillGen(); blockDriverEnabled && gen != nil && ix.N >= blockMin {
		g := gen()
		buf := make([]T, blockLen(ix.N))
		for base := 0; base < ix.N; base += BlockSize {
			end := base + BlockSize
			if end > ix.N {
				end = ix.N
			}
			b := buf[:end-base]
			g(b, base)
			for _, v := range b {
				acc = w(acc, v)
			}
		}
		return acc
	}
	for i := 0; i < ix.N; i++ {
		acc = w(acc, ix.At(i))
	}
	return acc
}

// IdxToStep converts an indexer to a stepper that yields elements in index
// order (paper Fig. 2's idxToStep). The conversion loses parallelism but
// gains filterability.
func IdxToStep[T any](ix Idx[T]) Step[T] {
	return Step[T]{Gen: func() Cursor[T] {
		i := 0
		return func() (T, bool) {
			if i >= ix.N {
				var zero T
				return zero, false
			}
			v := ix.At(i)
			i++
			return v, true
		}
	}}
}

// IdxToFold converts an indexer to the push-based fold encoding.
func IdxToFold[T any](ix Idx[T]) Fold[T] {
	return func(yield func(T) bool) {
		for i := 0; i < ix.N; i++ {
			if !yield(ix.At(i)) {
				return
			}
		}
	}
}

// IdxToColl converts an indexer to a collector that pushes every element to
// the side-effecting worker (paper §3.1 idxToColl). The conversion removes
// the potential for parallelization.
func IdxToColl[T any](ix Idx[T]) Collector[T] {
	return func(w func(T)) {
		for i := 0; i < ix.N; i++ {
			w(ix.At(i))
		}
	}
}

// Pair is an anonymous product; Zip produces Pairs.
type Pair[A, B any] struct {
	Fst A
	Snd B
}

// Triple is a three-way product; Zip3 produces Triples.
type Triple[A, B, C any] struct {
	Fst A
	Snd B
	Trd C
}
