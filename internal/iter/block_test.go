package iter

import (
	"testing"

	"triolet/internal/domain"
)

// White-box tests for the block engine: FillRange's three paths, and the
// invariant that pipeline constructors preserve the block fast path
// (back/fill) through composition and Split. Losing a fast path is not a
// correctness bug — the per-element driver gives the same answer — so only
// these tests and the bench gate would catch the regression.

func TestBlockSizeIsPowerOfTwo(t *testing.T) {
	if BlockSize != 256 {
		// sched.BlockAlign mirrors this value without importing iter; its
		// side of the pairing is asserted in internal/sched. Update both.
		t.Fatalf("BlockSize = %d; update sched.BlockAlign to match and fix both tests", BlockSize)
	}
	if BlockSize&(BlockSize-1) != 0 {
		t.Fatalf("BlockSize = %d must be a power of two (sched snaps with a mask)", BlockSize)
	}
	if blockMin > BlockSize {
		t.Fatalf("blockMin %d > BlockSize %d", blockMin, BlockSize)
	}
}

func TestFillRangePaths(t *testing.T) {
	xs := make([]int64, 1000)
	for i := range xs {
		xs[i] = int64(3*i - 7)
	}
	check := func(name string, it Iter[int64], want func(i int) int64) {
		t.Helper()
		for _, span := range []struct{ lo, n int }{{0, 1000}, {17, 500}, {999, 1}, {5, blockMin - 1}, {0, 0}} {
			dst := make([]int64, span.n)
			FillRange(dst, it, span.lo)
			for i, v := range dst {
				if v != want(span.lo+i) {
					t.Fatalf("%s: FillRange(lo=%d)[%d] = %d, want %d", name, span.lo, i, v, want(span.lo+i))
				}
			}
		}
	}
	check("slice-backed", FromSlice(xs), func(i int) int64 { return xs[i] })
	check("map-kernel", Map(func(v int64) int64 { return v * 2 }, FromSlice(xs)),
		func(i int) int64 { return xs[i] * 2 })
	// At-only indexer: no back, no fill — exercises the fallback loop.
	check("at-only", IdxFlat(Idx[int64]{N: 1000, At: func(i int) int64 { return int64(i * i) }}),
		func(i int) int64 { return int64(i * i) })
	check("range-kernel", Map(func(i int) int64 { return int64(i) + 100 }, Range(1000)),
		func(i int) int64 { return int64(i) + 100 })
}

func TestFillRangePanicsOnNonFlat(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FillRange of a filtered iterator must panic (no per-index output position)")
		}
	}()
	it := Filter(func(v int64) bool { return v > 0 }, FromSlice([]int64{1, -2, 3}))
	FillRange(make([]int64, 2), it, 0)
}

// TestFastPathPreservation pins which constructors carry the fast-path
// representation forward. Each case would still be correct without the fast
// path; the assertions exist so a refactor can't silently fall back to
// per-element At chains.
func TestFastPathPreservation(t *testing.T) {
	xs := make([]int64, 2048)
	for i := range xs {
		xs[i] = int64(i % 131)
	}
	src := FromSlice(xs)
	if src.idx.backing() == nil {
		t.Fatal("FromSlice must record its backing slice")
	}
	if s := Split(src, domain.Range{Lo: 300, Hi: 900}); s.idx.backing() == nil {
		t.Fatal("Split of a slice-backed iterator must stay slice-backed")
	}

	if r := Range(100); r.idx.fillGen() == nil {
		t.Fatal("Range must carry a block kernel")
	}

	m := Map(func(v int64) int64 { return v + 1 }, src)
	if m.idx.fillGen() == nil {
		t.Fatal("Map over a slice-backed iterator must carry a block kernel")
	}
	if s := Split(m, domain.Range{Lo: 256, Hi: 1024}); s.idx.fillGen() == nil {
		t.Fatal("Split of a mapped iterator must keep the block kernel")
	}
	if mm := Map(func(v int64) int64 { return v * 3 }, m); mm.idx.fillGen() == nil {
		t.Fatal("Map over a mapped iterator must compose block kernels")
	}

	f := Filter(func(v int64) bool { return v%2 == 0 }, src)
	if f.fidx.cfill() == nil {
		t.Fatal("Filter over a slice-backed iterator must carry a compacting kernel")
	}
	if s := Split(f, domain.Range{Lo: 100, Hi: 2000}); s.fidx.cfill() == nil {
		t.Fatal("Split of a filtered iterator must keep the compacting kernel")
	}
	if mf := Map(func(v int64) int64 { return v - 5 }, f); mf.fidx.cfill() == nil {
		t.Fatal("Map over a filtered iterator must compose into the compacting kernel")
	}
	if ff := Filter(func(v int64) bool { return v%3 == 0 }, f); ff.fidx.cfill() == nil {
		t.Fatal("Filter over a filtered iterator must compose compacting kernels")
	}

	if z := ZipWith(func(a, b int64) int64 { return a * b }, src, src); z.idx.fillGen() == nil {
		t.Fatal("ZipWith of slice-backed iterators must carry a block kernel")
	}
	if z := Zip(src, src); z.idx.fillGen() == nil {
		t.Fatal("Zip of slice-backed iterators must carry a block kernel")
	}
	if zm := Map(func(p Pair[int64, int64]) int64 { return p.Fst + p.Snd }, Zip(src, src)); zm.idx.fillGen() == nil {
		t.Fatal("Map over Zip (the dot-product shape) must compose block kernels")
	}
}

// TestReaderKernelAgainstAt cross-checks every generated read kernel against
// the At contract on a composed producer.
func TestReaderKernelAgainstAt(t *testing.T) {
	xs := make([]int64, 700)
	for i := range xs {
		xs[i] = int64(i*i%251 - 30)
	}
	its := map[string]Iter[int64]{
		"slice":   FromSlice(xs),
		"map":     Map(func(v int64) int64 { return 2*v - 1 }, FromSlice(xs)),
		"zipwith": ZipWith(func(a, b int64) int64 { return a - b }, FromSlice(xs), Map(func(v int64) int64 { return v / 2 }, FromSlice(xs))),
		"split":   Split(Map(func(v int64) int64 { return v + 9 }, FromSlice(xs)), domain.Range{Lo: 123, Hi: 650}),
	}
	for name, it := range its {
		ix := it.idx
		gen := ix.reader()
		if gen == nil {
			t.Fatalf("%s: no read kernel", name)
		}
		kernel := gen()
		buf := make([]int64, BlockSize)
		for base := 0; base < ix.N; base += BlockSize {
			n := blockLen(ix.N - base)
			kernel(buf[:n], base)
			for i := 0; i < n; i++ {
				if buf[i] != ix.At(base+i) {
					t.Fatalf("%s: kernel[%d] = %d, At(%d) = %d", name, base+i, buf[i], base+i, ix.At(base+i))
				}
			}
		}
	}
}

// TestSharedIteratorConcurrentTraversal: kernels are generated per traversal,
// so one iterator value must be traversable from many goroutines at once
// (the sched pool does exactly this with Split ranges). Run with -race.
func TestSharedIteratorConcurrentTraversal(t *testing.T) {
	xs := make([]int64, 10000)
	var want int64
	for i := range xs {
		xs[i] = int64(i % 73)
	}
	it := Filter(func(v int64) bool { return v%5 != 0 },
		Map(func(v int64) int64 { return v*3 + 1 }, FromSlice(xs)))
	want = Sum(it)

	const workers = 8
	errs := make(chan int64, workers)
	for w := 0; w < workers; w++ {
		go func() { errs <- Sum(it) }()
	}
	for w := 0; w < workers; w++ {
		if got := <-errs; got != want {
			t.Fatalf("concurrent traversal: got %d, want %d", got, want)
		}
	}
}
