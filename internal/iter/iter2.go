package iter

import (
	"fmt"

	"triolet/internal/domain"
)

// Idx2 is a two-dimensional indexer: a virtual h×w collection whose element
// at row y, column x is computed by At(y, x). It is the Idx Dim2 instance
// of the paper's domain-generalized indexer (§3.3): keeping both
// coordinates avoids the division/modulus a flattened 1-D encoding would
// need to recover 2-D indices.
type Idx2[T any] struct {
	Dom domain.Dim2
	At  func(y, x int) T
}

// Iter2 is the two-dimensional iterator. Per the paper, only the IdxFlat
// constructor generalizes to multidimensional domains (variable-length
// traversals do not preserve dimensionality), so Iter2 is an indexer plus a
// parallelism hint.
type Iter2[T any] struct {
	idx  Idx2[T]
	hint ParHint
}

// Idx2Flat wraps a 2-D indexer as a 2-D iterator.
func Idx2Flat[T any](ix Idx2[T]) Iter2[T] { return Iter2[T]{idx: ix} }

// Dom reports the iterator's index domain.
func (it Iter2[T]) Dom() domain.Dim2 { return it.idx.Dom }

// Hint reports the iterator's parallelism hint.
func (it Iter2[T]) Hint() ParHint { return it.hint }

// At computes the element at (y, x).
func (it Iter2[T]) At(y, x int) T { return it.idx.At(y, x) }

// Par2 marks a 2-D iterator for distributed + thread parallelism.
func Par2[T any](it Iter2[T]) Iter2[T] { it.hint = ClusterPar; return it }

// LocalPar2 marks a 2-D iterator for thread parallelism within one node.
func LocalPar2[T any](it Iter2[T]) Iter2[T] { it.hint = NodePar; return it }

// ArrayRange2 iterates over all (y, x) index pairs of the h×w domain in
// row-major order — the paper's arrayRange((0,0),(h,w)), used to express
// transposition as a gather.
func ArrayRange2(d domain.Dim2) Iter2[domain.Ix2] {
	return Idx2Flat(Idx2[domain.Ix2]{Dom: d, At: func(y, x int) domain.Ix2 {
		return domain.Ix2{Y: y, X: x}
	}})
}

// Map2 applies f to every element of a 2-D iterator.
func Map2[T, U any](f func(T) U, it Iter2[T]) Iter2[U] {
	at := it.idx.At
	out := Idx2Flat(Idx2[U]{Dom: it.idx.Dom, At: func(y, x int) U { return f(at(y, x)) }})
	out.hint = it.hint
	return out
}

// ZipWith2 combines corresponding elements of two 2-D iterators over the
// intersection of their domains.
func ZipWith2[A, B, C any](f func(A, B) C, a Iter2[A], b Iter2[B]) Iter2[C] {
	atA, atB := a.idx.At, b.idx.At
	out := Idx2Flat(Idx2[C]{
		Dom: a.idx.Dom.Intersect(b.idx.Dom),
		At:  func(y, x int) C { return f(atA(y, x), atB(y, x)) },
	})
	out.hint = mergeHint(a.hint, b.hint)
	return out
}

// SliceRect restricts a 2-D iterator to the rectangle r, re-basing indices
// at (0,0). Block-decomposed parallel loops hand each task a SliceRect.
func SliceRect[T any](it Iter2[T], r domain.Rect) Iter2[T] {
	d := it.idx.Dom
	if r.Rows.Lo < 0 || r.Rows.Hi > d.H || r.Cols.Lo < 0 || r.Cols.Hi > d.W {
		panic(fmt.Sprintf("iter: SliceRect %v outside %v", r, d))
	}
	at := it.idx.At
	out := Idx2Flat(Idx2[T]{
		Dom: domain.Dim2{H: r.Rows.Len(), W: r.Cols.Len()},
		At:  func(y, x int) T { return at(r.Rows.Lo+y, r.Cols.Lo+x) },
	})
	out.hint = it.hint
	return out
}

// Linearize flattens a 2-D iterator to a 1-D iterator in row-major order,
// so 1-D consumers (Sum, Reduce, Collect) apply.
func Linearize[T any](it Iter2[T]) Iter[T] {
	d := it.idx.Dom
	at := it.idx.At
	out := IdxFlat(Idx[T]{N: d.Size(), At: func(i int) T {
		return at(i/d.W, i%d.W)
	}})
	out.hint = it.hint
	return out
}

// RowsOf reinterprets a 2-D iterator as a 1-D iterator over rows, each row
// itself a 1-D iterator (the paper's rows function, §2). Used with
// OuterProduct to express 2-D block decompositions.
func RowsOf[T any](it Iter2[T]) Iter[Iter[T]] {
	d := it.idx.Dom
	at := it.idx.At
	return IdxFlat(Idx[Iter[T]]{N: d.H, At: func(y int) Iter[T] {
		return IdxFlat(Idx[T]{N: d.W, At: func(x int) T { return at(y, x) }})
	}})
}

// OuterProduct pairs every element of a with every element of b, producing
// the 2-D iterator whose (y, x) element is (a[y], b[x]) — the paper's
// outerproduct (§2). a and b must be flat (splittable) iterators, which is
// what rows produces; the 2-D block structure is what lets the distributed
// skeleton send each task only the rows its block needs.
func OuterProduct[A, B any](a Iter[A], b Iter[B]) Iter2[Pair[A, B]] {
	if a.kind != KIdxFlat || b.kind != KIdxFlat {
		panic("iter: OuterProduct requires flat indexer operands")
	}
	ia, ib := a.idx, b.idx
	out := Idx2Flat(Idx2[Pair[A, B]]{
		Dom: domain.Dim2{H: ia.N, W: ib.N},
		At:  func(y, x int) Pair[A, B] { return Pair[A, B]{Fst: ia.At(y), Snd: ib.At(x)} },
	})
	out.hint = mergeHint(a.hint, b.hint)
	return out
}

// Reduce2 folds all elements in row-major order.
func Reduce2[T, A any](it Iter2[T], z A, w func(A, T) A) A {
	d := it.idx.Dom
	at := it.idx.At
	acc := z
	for y := 0; y < d.H; y++ {
		for x := 0; x < d.W; x++ {
			acc = w(acc, at(y, x))
		}
	}
	return acc
}

// BuildInto evaluates the rectangle r of the iterator into the matching
// rectangle of dst (dst shares the iterator's domain shape). Threaded and
// distributed builders evaluate disjoint rectangles concurrently; in-place
// writes at the sequential level are the paper's §3.4 requirement.
func BuildInto[T any](dst Matrix2[T], it Iter2[T], r domain.Rect) {
	at := it.idx.At
	for y := r.Rows.Lo; y < r.Rows.Hi; y++ {
		row := dst.Row(y)
		for x := r.Cols.Lo; x < r.Cols.Hi; x++ {
			row[x] = at(y, x)
		}
	}
}

// Build materializes the whole 2-D iterator into a fresh matrix,
// sequentially.
func Build[T any](it Iter2[T]) Matrix2[T] {
	d := it.idx.Dom
	m := Matrix2[T]{H: d.H, W: d.W, Data: make([]T, d.Size())}
	BuildInto(m, it, d.Whole())
	return m
}

// Matrix2 duplicates the minimal matrix surface iter needs (row-major flat
// storage) without importing internal/array, keeping this package
// dependency-free except for domain. internal/array.Matrix converts to and
// from Matrix2 for free since the layouts are identical.
type Matrix2[T any] struct {
	H, W int
	Data []T
}

// Row returns row y as a view.
func (m Matrix2[T]) Row(y int) []T { return m.Data[y*m.W : (y+1)*m.W : (y+1)*m.W] }

// At returns the element at (y, x).
func (m Matrix2[T]) At(y, x int) T { return m.Data[y*m.W+x] }

// Clone returns a deep copy. Double-buffered consumers (iterated stencils)
// clone once and then alternate buffers in place.
func (m Matrix2[T]) Clone() Matrix2[T] {
	cp := make([]T, len(m.Data))
	copy(cp, m.Data)
	return Matrix2[T]{H: m.H, W: m.W, Data: cp}
}

// MatrixRows iterates over a matrix's rows as zero-copy slice views — the
// post-fusion form of the paper's rows function, where each row iterator
// has been inlined down to direct contiguous array access.
func MatrixRows[T any](m Matrix2[T]) Iter[[]T] {
	return IdxFlat(Idx[[]T]{N: m.H, At: m.Row})
}

// FromMatrix2 iterates over an existing matrix.
func FromMatrix2[T any](m Matrix2[T]) Iter2[T] {
	return Idx2Flat(Idx2[T]{
		Dom: domain.Dim2{H: m.H, W: m.W},
		At:  func(y, x int) T { return m.Data[y*m.W+x] },
	})
}
