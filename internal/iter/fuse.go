package iter

// Fused reduction kernels.
//
// The block engine (block.go) closes most of the gap to hand-written loops
// by staging BlockSize elements through a reused buffer. For reductions the
// buffer itself is the remaining overhead: a zipWith-sum stages every pair
// through memory that a raw loop would keep in registers. The fused kernels
// here eliminate the staging entirely — a producer whose elements derive
// from contiguous storage exposes a reduction kernel func(acc, lo, hi) acc
// that loads directly from the source arrays and folds in index order, so
// Sum over zipWith/dot-product pipelines runs the same loop shape as the
// hand-written code: one indirect call per user function per element and
// zero buffer traffic.
//
// The kernels are type-erased (idxFast.red, idxFast.mkRed) because generics
// cannot express "this pipeline will later be mapped to a type I cannot
// name yet". Each construction site knows its own concrete types, so it
// recovers the erased function with a dynamic type switch over the closed
// numeric set below; a pipeline whose types fall outside the set simply
// lacks the kernel and stays on the staged block path. Folds run
// left-to-right with the same addition order as the per-element driver, so
// results remain bit-identical across drivers (the differential pipeline
// test flips blockDriverEnabled to prove it).
//
// Fused numeric result set: float64, float32, int, int64, int32, uint32,
// uint64 — the element types the benchmarks and the serial wire format
// traffic in.

// redOf returns ix's fused reduction kernel, or nil. The type assertion
// recovers the erased kernel only when its accumulator type matches T.
func redOf[T any](ix Idx[T]) func(T, int, int) T {
	if ix.fast == nil || ix.fast.red == nil {
		return nil
	}
	r, _ := ix.fast.red.(func(T, int, int) T)
	return r
}

// mapRedKernel folds g over one source array: acc += g(back[i]).
func mapRedKernel[T any, R Number](g func(T) R, back []T) func(R, int, int) R {
	return func(acc R, lo, hi int) R {
		for _, v := range back[lo:hi] {
			acc += g(v)
		}
		return acc
	}
}

// zipRedKernel folds f over two source arrays: acc += f(xa[i], xb[i]).
func zipRedKernel[A, B any, R Number](f func(A, B) R, xa []A, xb []B) func(R, int, int) R {
	return func(acc R, lo, hi int) R {
		va, vb := xa[lo:hi], xb[lo:hi]
		for i := range va {
			acc += f(va[i], vb[i])
		}
		return acc
	}
}

// pairRedKernel folds g over pairs built inline from two source arrays.
func pairRedKernel[A, B any, R Number](g func(Pair[A, B]) R, xa []A, xb []B) func(R, int, int) R {
	return func(acc R, lo, hi int) R {
		va, vb := xa[lo:hi], xb[lo:hi]
		for i := range va {
			acc += g(Pair[A, B]{Fst: va[i], Snd: vb[i]})
		}
		return acc
	}
}

// rebaseKernel offsets a kernel's index window: SliceIdx re-bases at zero.
func rebaseKernel[R Number](r func(R, int, int) R, off int) func(R, int, int) R {
	return func(acc R, lo, hi int) R { return r(acc, lo+off, hi+off) }
}

// sliceMapRed builds the fused kernel reducing g over a backing array,
// where g is a func(T) R for some fused numeric R; nil otherwise.
func sliceMapRed[T any](g any, back []T) any {
	switch gn := g.(type) {
	case func(T) float64:
		return mapRedKernel(gn, back)
	case func(T) float32:
		return mapRedKernel(gn, back)
	case func(T) int:
		return mapRedKernel(gn, back)
	case func(T) int64:
		return mapRedKernel(gn, back)
	case func(T) int32:
		return mapRedKernel(gn, back)
	case func(T) uint32:
		return mapRedKernel(gn, back)
	case func(T) uint64:
		return mapRedKernel(gn, back)
	}
	return nil
}

// zipRed builds the fused kernel reducing f(xa[i], xb[i]) when f's result
// is a fused numeric type; nil otherwise.
func zipRed[A, B, C any](f func(A, B) C, xa []A, xb []B) any {
	switch fn := any(f).(type) {
	case func(A, B) float64:
		return zipRedKernel(fn, xa, xb)
	case func(A, B) float32:
		return zipRedKernel(fn, xa, xb)
	case func(A, B) int:
		return zipRedKernel(fn, xa, xb)
	case func(A, B) int64:
		return zipRedKernel(fn, xa, xb)
	case func(A, B) int32:
		return zipRedKernel(fn, xa, xb)
	case func(A, B) uint32:
		return zipRedKernel(fn, xa, xb)
	case func(A, B) uint64:
		return zipRedKernel(fn, xa, xb)
	}
	return nil
}

// zipMapRed builds the fused kernel reducing g(f(xa[i], xb[i])) — a map
// stage layered on a zipWith — when g is a func(C) R for a fused numeric R.
func zipMapRed[A, B, C any](g any, f func(A, B) C, xa []A, xb []B) any {
	switch gn := g.(type) {
	case func(C) float64:
		return zipRedKernel(func(a A, b B) float64 { return gn(f(a, b)) }, xa, xb)
	case func(C) float32:
		return zipRedKernel(func(a A, b B) float32 { return gn(f(a, b)) }, xa, xb)
	case func(C) int:
		return zipRedKernel(func(a A, b B) int { return gn(f(a, b)) }, xa, xb)
	case func(C) int64:
		return zipRedKernel(func(a A, b B) int64 { return gn(f(a, b)) }, xa, xb)
	case func(C) int32:
		return zipRedKernel(func(a A, b B) int32 { return gn(f(a, b)) }, xa, xb)
	case func(C) uint32:
		return zipRedKernel(func(a A, b B) uint32 { return gn(f(a, b)) }, xa, xb)
	case func(C) uint64:
		return zipRedKernel(func(a A, b B) uint64 { return gn(f(a, b)) }, xa, xb)
	}
	return nil
}

// pairRed builds the fused kernel reducing g over inline-constructed pairs
// — a map stage layered on a Zip — when g is a func(Pair[A, B]) R for a
// fused numeric R. This is the kernel behind the dot-product shape
// Sum(Map(mul, Zip(a, b))): the pair never touches a staging buffer.
func pairRed[A, B any](g any, xa []A, xb []B) any {
	switch gn := g.(type) {
	case func(Pair[A, B]) float64:
		return pairRedKernel(gn, xa, xb)
	case func(Pair[A, B]) float32:
		return pairRedKernel(gn, xa, xb)
	case func(Pair[A, B]) int:
		return pairRedKernel(gn, xa, xb)
	case func(Pair[A, B]) int64:
		return pairRedKernel(gn, xa, xb)
	case func(Pair[A, B]) int32:
		return pairRedKernel(gn, xa, xb)
	case func(Pair[A, B]) uint32:
		return pairRedKernel(gn, xa, xb)
	case func(Pair[A, B]) uint64:
		return pairRedKernel(gn, xa, xb)
	}
	return nil
}

// rebaseRed offsets a type-erased kernel's index window for SliceIdx.
func rebaseRed(red any, off int) any {
	switch r := red.(type) {
	case func(float64, int, int) float64:
		return rebaseKernel(r, off)
	case func(float32, int, int) float32:
		return rebaseKernel(r, off)
	case func(int, int, int) int:
		return rebaseKernel(r, off)
	case func(int64, int, int) int64:
		return rebaseKernel(r, off)
	case func(int32, int, int) int32:
		return rebaseKernel(r, off)
	case func(uint32, int, int) uint32:
		return rebaseKernel(r, off)
	case func(uint64, int, int) uint64:
		return rebaseKernel(r, off)
	}
	return nil
}

// composeMkRed threads a map stage f through a source's mkRed builder: the
// fused kernel for g∘f over the source, when g is a func(U) R for a fused
// numeric R.
func composeMkRed[T, U any](srcMk func(any) any, f func(T) U, g any) any {
	switch gn := g.(type) {
	case func(U) float64:
		return srcMk(any(func(v T) float64 { return gn(f(v)) }))
	case func(U) float32:
		return srcMk(any(func(v T) float32 { return gn(f(v)) }))
	case func(U) int:
		return srcMk(any(func(v T) int { return gn(f(v)) }))
	case func(U) int64:
		return srcMk(any(func(v T) int64 { return gn(f(v)) }))
	case func(U) int32:
		return srcMk(any(func(v T) int32 { return gn(f(v)) }))
	case func(U) uint32:
		return srcMk(any(func(v T) uint32 { return gn(f(v)) }))
	case func(U) uint64:
		return srcMk(any(func(v T) uint64 { return gn(f(v)) }))
	}
	return nil
}

// sourceMkRed returns the mapped-reduction builder of a producer: its own
// mkRed when it has one, or a builder over its backing array. Nil when the
// producer has no fused source.
func sourceMkRed[T any](fast *idxFast[T]) func(any) any {
	if fast.mkRed != nil {
		return fast.mkRed
	}
	if back := fast.back; back != nil {
		return func(g any) any { return sliceMapRed(g, back) }
	}
	return nil
}
