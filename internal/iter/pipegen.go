package iter

// Declarative pipeline descriptions: a pipeline is a seed slice plus a
// sequence of PipeOps, each op a randomly parameterizable skeleton
// operation. The encoding started life inside random_pipeline_test.go as
// the generative property-test driver; it is a library because the same
// description now feeds three consumers that must agree on its meaning:
//
//   - the in-package property tests (random pipelines vs. the slice
//     reference interpreter, block driver vs. per-element driver);
//   - the cross-mode differential oracle (internal/diffcheck), which ships
//     PipeOps across the virtual cluster fabric and rebuilds the pipeline
//     on every node — the ops are three plain bytes precisely so they
//     serialize trivially, standing in for Triolet's serialized closures;
//   - fuzz targets, which decode op streams from raw corpus bytes.
//
// Every op keeps its output a total function of its input slice: the
// reference interpreter (ApplyPipeOpRef) is the single source of truth for
// what a pipeline "means", and every execution mode is diffed against it.

// PipeOpKinds is the number of distinct operation kinds a PipeOp.Kind byte
// selects among (interpreted modulo PipeOpKinds).
const PipeOpKinds = 7

// PipeOp is one pipeline operation, driven by two parameter bytes. The
// zero value is a valid op (an affine map).
type PipeOp struct {
	Kind uint8
	A, B uint8
}

// ApplyPipeOp applies the op to the iterator side.
func ApplyPipeOp(op PipeOp, it Iter[int64]) Iter[int64] {
	switch op.Kind % PipeOpKinds {
	case 0: // map: affine
		k := int64(op.A%5) + 1
		c := int64(op.B % 7)
		return Map(func(x int64) int64 { return k*x + c }, it)
	case 1: // filter: residue class
		m := int64(op.A%3) + 2
		r := int64(op.B) % m
		return Filter(func(x int64) bool { return ((x%m)+m)%m == r }, it)
	case 2: // concatMap: expand into |x| % k values
		k := int64(op.A%3) + 2
		return ConcatMap(func(x int64) Iter[int64] {
			n := int(((x % k) + k) % k)
			return Map(func(j int) int64 { return x + int64(j) }, Range(n))
		}, it)
	case 3: // take
		return Take(int(op.A%40), it)
	case 4: // drop
		return Drop(int(op.A%10), it)
	case 5: // chain a small constant block
		extra := []int64{int64(op.A), int64(op.B), -3}
		return Chain(it, FromSlice(extra))
	default: // scan (running sum)
		return Scan(it, int64(op.B%4), func(a, v int64) int64 { return a + v })
	}
}

// ApplyPipeOpRef applies the same op to the reference slice — the
// sequential slice semantics every execution mode must reproduce.
func ApplyPipeOpRef(op PipeOp, xs []int64) []int64 {
	switch op.Kind % PipeOpKinds {
	case 0:
		k := int64(op.A%5) + 1
		c := int64(op.B % 7)
		out := make([]int64, len(xs))
		for i, x := range xs {
			out[i] = k*x + c
		}
		return out
	case 1:
		m := int64(op.A%3) + 2
		r := int64(op.B) % m
		var out []int64
		for _, x := range xs {
			if ((x%m)+m)%m == r {
				out = append(out, x)
			}
		}
		return out
	case 2:
		k := int64(op.A%3) + 2
		var out []int64
		for _, x := range xs {
			n := int(((x % k) + k) % k)
			for j := 0; j < n; j++ {
				out = append(out, x+int64(j))
			}
		}
		return out
	case 3:
		n := int(op.A % 40)
		if n > len(xs) {
			n = len(xs)
		}
		return xs[:n]
	case 4:
		n := int(op.A % 10)
		if n > len(xs) {
			n = len(xs)
		}
		return xs[n:]
	case 5:
		return append(append([]int64{}, xs...), int64(op.A), int64(op.B), -3)
	default:
		acc := int64(op.B % 4)
		out := make([]int64, len(xs))
		for i, x := range xs {
			acc += x
			out[i] = acc
		}
		return out
	}
}

// BuildPipeline constructs the iterator for a whole pipeline description.
func BuildPipeline(seed []int64, ops []PipeOp) Iter[int64] {
	it := FromSlice(seed)
	for _, op := range ops {
		it = ApplyPipeOp(op, it)
	}
	return it
}

// RefPipeline evaluates the whole pipeline under the reference slice
// semantics. limit > 0 bounds intermediate explosion (concatMap chains can
// grow geometrically): when any intermediate slice exceeds limit, RefPipeline
// returns (nil, false) and callers should skip the case.
func RefPipeline(seed []int64, ops []PipeOp, limit int) ([]int64, bool) {
	ref := seed
	for _, op := range ops {
		ref = ApplyPipeOpRef(op, ref)
		if limit > 0 && len(ref) > limit {
			return nil, false
		}
	}
	return ref, true
}

// SetBlockDriver toggles the block-at-a-time execution engine for every
// consumer in this package and returns the previous setting. It exists for
// equivalence harnesses (the in-package driver property tests and the
// cross-package differential oracle) that must run the same pipeline under
// both drivers; production code never calls it. Not safe to call while a
// traversal is in flight on another goroutine.
func SetBlockDriver(on bool) (prev bool) {
	prev = blockDriverEnabled
	blockDriverEnabled = on
	return prev
}
