package iter

import (
	"fmt"

	"triolet/internal/domain"
)

// This file extends the skeleton inventory beyond the operations paper
// Fig. 2 spells out, following the same discipline: each function
// dispatches on the input constructor, output structure is determined by
// input structure, and regular (indexer) structure is preserved wherever
// the operation allows so parallelism is not lost.

// Enumerate pairs every element with its position in the traversal. Over a
// flat indexer the position is the index (random access preserved); other
// shapes are numbered sequentially through a stepper, since elements of an
// irregular loop have no statically known positions (the paper's §3.1
// argument for why filter defeats indexers).
func Enumerate[T any](it Iter[T]) Iter[Pair[int, T]] {
	if it.kind == KIdxFlat {
		ix := it.idx
		out := IdxFlat(Idx[Pair[int, T]]{N: ix.N, At: func(i int) Pair[int, T] {
			return Pair[int, T]{Fst: i, Snd: ix.At(i)}
		}})
		out.hint = it.hint
		return out
	}
	src := ToStep(it)
	out := StepFlat(Step[Pair[int, T]]{Gen: func() Cursor[Pair[int, T]] {
		cur := src.Gen()
		n := 0
		return func() (Pair[int, T], bool) {
			v, ok := cur()
			if !ok {
				return Pair[int, T]{}, false
			}
			p := Pair[int, T]{Fst: n, Snd: v}
			n++
			return p, true
		}
	}})
	out.hint = it.hint
	return out
}

// Take yields at most n elements. A flat indexer stays a flat indexer
// (it is just a prefix slice); everything else goes through a stepper.
func Take[T any](n int, it Iter[T]) Iter[T] {
	if n < 0 {
		panic(fmt.Sprintf("iter: Take(%d)", n))
	}
	if it.kind == KIdxFlat {
		out := IdxFlat(SliceIdx(it.idx, 0, min(n, it.idx.N)))
		out.hint = it.hint
		return out
	}
	out := StepFlat(TakeStep(n, ToStep(it)))
	out.hint = it.hint
	return out
}

// Drop skips the first n elements. A flat indexer stays a flat indexer.
func Drop[T any](n int, it Iter[T]) Iter[T] {
	if n < 0 {
		panic(fmt.Sprintf("iter: Drop(%d)", n))
	}
	if it.kind == KIdxFlat {
		out := IdxFlat(SliceIdx(it.idx, min(n, it.idx.N), it.idx.N))
		out.hint = it.hint
		return out
	}
	src := ToStep(it)
	out := StepFlat(Step[T]{Gen: func() Cursor[T] {
		cur := src.Gen()
		for range n {
			if _, ok := cur(); !ok {
				break
			}
		}
		return cur
	}})
	out.hint = it.hint
	return out
}

// Chain concatenates two iterators. Two flat indexers chain into an
// indexer (random access is preserved by index arithmetic); any other
// combination becomes a two-element nest, preserving each side's inner
// structure.
func Chain[T any](a, b Iter[T]) Iter[T] {
	hint := mergeHint(a.hint, b.hint)
	if a.kind == KIdxFlat && b.kind == KIdxFlat {
		ia, ib := a.idx, b.idx
		out := IdxFlat(Idx[T]{N: ia.N + ib.N, At: func(i int) T {
			if i < ia.N {
				return ia.At(i)
			}
			return ib.At(i - ia.N)
		}})
		out.hint = hint
		return out
	}
	parts := [2]Iter[T]{a, b}
	out := IdxNest(Idx[Iter[T]]{N: 2, At: func(i int) Iter[T] { return parts[i] }})
	out.hint = hint
	return out
}

// Scan yields the running left-fold of the iterator: for input x0, x1, …
// it yields w(z,x0), w(w(z,x0),x1), … — inherently sequential (each output
// depends on all earlier inputs), so the result is always a stepper. This
// is the fusible sequential scan; the *parallel* multi-pass scan the paper
// contrasts against lives in core.PackLocal.
func Scan[T, A any](it Iter[T], z A, w func(A, T) A) Iter[A] {
	src := ToStep(it)
	out := StepFlat(Step[A]{Gen: func() Cursor[A] {
		cur := src.Gen()
		acc := z
		return func() (A, bool) {
			v, ok := cur()
			if !ok {
				var zero A
				return zero, false
			}
			acc = w(acc, v)
			return acc, true
		}
	}})
	out.hint = it.hint
	return out
}

// Any reports whether pred holds for some element, stopping at the first
// hit (early termination through the fold encoding).
func Any[T any](pred func(T) bool, it Iter[T]) bool {
	found := false
	fold := toFold(it)
	fold(func(v T) bool {
		if pred(v) {
			found = true
			return false
		}
		return true
	})
	return found
}

// All reports whether pred holds for every element, stopping at the first
// counterexample.
func All[T any](pred func(T) bool, it Iter[T]) bool {
	return !Any(func(v T) bool { return !pred(v) }, it)
}

// Find returns the first element satisfying pred.
func Find[T any](pred func(T) bool, it Iter[T]) (T, bool) {
	var out T
	found := false
	toFold(it)(func(v T) bool {
		if pred(v) {
			out = v
			found = true
			return false
		}
		return true
	})
	return out, found
}

// toFold converts any iterator to the push-based encoding with early
// termination, consuming each nesting level as one loop.
func toFold[T any](it Iter[T]) Fold[T] {
	switch it.kind {
	case KIdxFlat:
		return IdxToFold(it.idx)
	case KIdxFilter:
		fx := it.fidx
		return func(yield func(T) bool) {
			for i := 0; i < fx.N; i++ {
				if v, ok := fx.At(i); ok && !yield(v) {
					return
				}
			}
		}
	case KStepFlat:
		return StepToFold(it.step)
	case KIdxNest:
		inner := it.idxN
		return func(yield func(T) bool) {
			for i := 0; i < inner.N; i++ {
				stopped := false
				toFold(inner.At(i))(func(v T) bool {
					if !yield(v) {
						stopped = true
						return false
					}
					return true
				})
				if stopped {
					return
				}
			}
		}
	case KStepNest:
		inner := it.stepN
		return func(yield func(T) bool) {
			cur := inner.Gen()
			for {
				sub, ok := cur()
				if !ok {
					return
				}
				stopped := false
				toFold(sub)(func(v T) bool {
					if !yield(v) {
						stopped = true
						return false
					}
					return true
				})
				if stopped {
					return
				}
			}
		}
	}
	panic("iter: bad kind")
}

// MaxBy returns the element with the greatest key, or ok=false for an
// empty iterator. Ties keep the earliest element.
func MaxBy[T any, K Number](key func(T) K, it Iter[T]) (T, bool) {
	type acc struct {
		v  T
		k  K
		ok bool
	}
	r := Reduce(it, acc{}, func(a acc, v T) acc {
		k := key(v)
		if !a.ok || k > a.k {
			return acc{v: v, k: k, ok: true}
		}
		return a
	})
	return r.v, r.ok
}

// MinBy returns the element with the least key, or ok=false for an empty
// iterator. Ties keep the earliest element.
func MinBy[T any, K Number](key func(T) K, it Iter[T]) (T, bool) {
	type acc struct {
		v  T
		k  K
		ok bool
	}
	r := Reduce(it, acc{}, func(a acc, v T) acc {
		k := key(v)
		if !a.ok || k < a.k {
			return acc{v: v, k: k, ok: true}
		}
		return a
	})
	return r.v, r.ok
}

// GroupReduce folds every element into a per-key accumulator — the
// reduce-by-key skeleton. It is a collector-based consumer (mutation of
// the map), so it handles any input structure including irregular nests.
func GroupReduce[T any, K comparable, A any](it Iter[T], key func(T) K, z func() A, w func(A, T) A) map[K]A {
	out := make(map[K]A)
	Collect(it)(func(v T) {
		k := key(v)
		a, ok := out[k]
		if !ok {
			a = z()
		}
		out[k] = w(a, v)
	})
	return out
}

// Chunks regroups a flat indexer into consecutive blocks of at most size
// elements, each block itself a flat (splittable) iterator — the shape
// Eden's chunked-vector style distributes (paper §4.2).
func Chunks[T any](size int, it Iter[T]) Iter[Iter[T]] {
	if size <= 0 {
		panic(fmt.Sprintf("iter: Chunks(%d)", size))
	}
	if it.kind != KIdxFlat {
		panic("iter: Chunks requires a flat indexer")
	}
	ix := it.idx
	ranges := domain.ChunkPartition(ix.N, size)
	return IdxFlat(Idx[Iter[T]]{N: len(ranges), At: func(i int) Iter[T] {
		r := ranges[i]
		return IdxFlat(SliceIdx(ix, r.Lo, r.Hi))
	}})
}

// Flatten collapses an iterator of iterators by one level — ConcatMap with
// the identity expansion.
func Flatten[T any](it Iter[Iter[T]]) Iter[T] {
	return ConcatMap(func(inner Iter[T]) Iter[T] { return inner }, it)
}

// Mean returns the arithmetic mean of a float64 iterator and the element
// count (mean is 0 for an empty iterator).
func Mean(it Iter[float64]) (float64, int) {
	type acc struct {
		sum float64
		n   int
	}
	r := Reduce(it, acc{}, func(a acc, v float64) acc {
		return acc{sum: a.sum + v, n: a.n + 1}
	})
	if r.n == 0 {
		return 0, 0
	}
	return r.sum / float64(r.n), r.n
}
