package iter

// Fold is the fold encoding (paper §3.1 "Folds"): a function that drives a
// worker over every element in a fixed order. The worker returns false to
// stop early. Folds offer the consumer no control over execution order —
// which rules out zip — but nested traversals fold into clean loop nests,
// which is why the hybrid Iter consumes nesting levels through folds.
type Fold[T any] func(yield func(T) bool)

// FoldOf folds over the elements of a slice.
func FoldOf[T any](xs []T) Fold[T] {
	return func(yield func(T) bool) {
		for _, v := range xs {
			if !yield(v) {
				return
			}
		}
	}
}

// MapFold applies f to each element pushed by the fold.
func MapFold[T, U any](f func(T) U, fo Fold[T]) Fold[U] {
	return func(yield func(U) bool) {
		fo(func(v T) bool { return yield(f(v)) })
	}
}

// FilterFold keeps only elements satisfying pred.
func FilterFold[T any](pred func(T) bool, fo Fold[T]) Fold[T] {
	return func(yield func(T) bool) {
		fo(func(v T) bool {
			if !pred(v) {
				return true
			}
			return yield(v)
		})
	}
}

// ConcatMapFold expands each element into a sub-fold. Unlike steppers,
// folds nest without optimization trouble (paper §3.1): the inner fold is a
// plain nested loop.
func ConcatMapFold[T, U any](f func(T) Fold[U], fo Fold[T]) Fold[U] {
	return func(yield func(U) bool) {
		fo(func(v T) bool {
			stopped := false
			f(v)(func(u U) bool {
				if !yield(u) {
					stopped = true
					return false
				}
				return true
			})
			return !stopped
		})
	}
}

// ReduceFold reduces the fold with worker w from initial accumulator z.
func ReduceFold[T, A any](fo Fold[T], z A, w func(A, T) A) A {
	acc := z
	fo(func(v T) bool {
		acc = w(acc, v)
		return true
	})
	return acc
}

// ReduceColl reduces a collector with worker w from initial accumulator z —
// the no-early-exit variant of ReduceFold. Reductions that never stop early
// (Sum, Count, Mean, histogram merges) have no use for the bool the fold
// encoding threads through every yield; routing them through the collector
// encoding drops that return value, and the branch on it, from the hot
// per-element path.
func ReduceColl[T, A any](c Collector[T], z A, w func(A, T) A) A {
	acc := z
	c(func(v T) { acc = w(acc, v) })
	return acc
}

// Collector is the collector encoding (paper §3.1 "Collectors"): an
// imperative fold whose worker updates its output through side effects.
// Triolet uses collectors in sequential code for histogramming and for
// packing variable-length outputs into an array. Collectors support
// mutation but not parallel execution.
type Collector[T any] func(w func(T))

// FoldToColl converts a fold to a collector (they differ only in early
// termination and the side-effect discipline of the worker).
func FoldToColl[T any](fo Fold[T]) Collector[T] {
	return func(w func(T)) {
		fo(func(v T) bool {
			w(v)
			return true
		})
	}
}

// MapColl applies f before the worker sees each element.
func MapColl[T, U any](f func(T) U, c Collector[T]) Collector[U] {
	return func(w func(U)) {
		c(func(v T) { w(f(v)) })
	}
}

// RunInto drains the collector, appending every element to *out. This is
// the packing step for variable-length-output skeletons.
func (c Collector[T]) RunInto(out *[]T) {
	c(func(v T) { *out = append(*out, v) })
}

// Count returns the number of elements the collector produces.
func (c Collector[T]) Count() int {
	n := 0
	c(func(T) { n++ })
	return n
}
