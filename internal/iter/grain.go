package iter

// Grain hints: AutoPar's hook into the local skeletons. The planner picks
// a block-aligned grain per workload; WithGrain attaches it to the
// iterator so consumers that take "grain <= 0 means default" (the core
// local skeletons) pick up the planned value without every call site
// growing a parameter. Like ParHint, the grain survives the structural
// combinators (Map/Filter/ConcatMap/Zip*); a zip of two hinted iterators
// takes the larger grain, mirroring mergeHint's "most parallel wins".

// WithGrain returns it carrying an explicit parallel grain. grain <= 0
// clears the hint.
func WithGrain[T any](it Iter[T], grain int) Iter[T] {
	if grain < 0 {
		grain = 0
	}
	it.grain = grain
	return it
}

// Grain reports the iterator's grain hint (0 = unset).
func (it Iter[T]) Grain() int { return it.grain }

// mergeGrain combines two grain hints: the larger explicit grain wins.
func mergeGrain(a, b int) int { return max(a, b) }
