// Allocation-count regression tests for the block engine's slice-backed
// fast paths. The race detector instruments allocations, so these only run
// in normal builds; CI's race job covers the same paths for correctness.

//go:build !race

package iter

import (
	"runtime"
	"testing"

	"triolet/internal/domain"
)

var allocSink int64

var allocSinkF float64

// TestSumSliceBackedZeroAllocs: summing a slice-backed iterator must range
// over the backing array directly — zero allocations, not even a buffer.
func TestSumSliceBackedZeroAllocs(t *testing.T) {
	xs := make([]int64, 1<<14)
	for i := range xs {
		xs[i] = int64(i)
	}
	it := FromSlice(xs)
	if n := testing.AllocsPerRun(100, func() { allocSink = Sum(it) }); n != 0 {
		t.Fatalf("Sum over slice-backed iterator allocated %.1f per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { allocSink = int64(Count(it)) }); n != 0 {
		t.Fatalf("Count over slice-backed iterator allocated %.1f per run, want 0", n)
	}
}

// TestReduceSliceBackedZeroAllocs: a generic Reduce over a slice-backed
// iterator folds the backing array directly — zero allocations.
func TestReduceSliceBackedZeroAllocs(t *testing.T) {
	xs := make([]int64, 1<<14)
	for i := range xs {
		xs[i] = int64(i % 257)
	}
	it := FromSlice(xs)
	w := func(a, v int64) int64 { return a + v }
	if n := testing.AllocsPerRun(100, func() { allocSink = Reduce(it, int64(0), w) }); n != 0 {
		t.Fatalf("Reduce over slice-backed iterator allocated %.1f per run, want 0", n)
	}
}

// TestFusedReductionZeroAllocs: the fused kernels (fuse.go) reduce zipWith
// and zip-map pipelines straight off the source arrays — the kernel is
// built once at pipeline construction, so steady-state traversals allocate
// nothing: no staging buffer, no per-traversal kernel generation.
func TestFusedReductionZeroAllocs(t *testing.T) {
	a := make([]float64, 1<<13)
	b := make([]float64, 1<<13)
	for i := range a {
		a[i] = float64(i%911) * 0.5
		b[i] = float64(i%613) * 0.25
	}

	zw := ZipWith(func(x, y float64) float64 { return x * y }, FromSlice(a), FromSlice(b))
	if n := testing.AllocsPerRun(100, func() { allocSinkF = Sum(zw) }); n != 0 {
		t.Fatalf("zipwith-sum allocated %.1f per run, want 0 (fused kernel)", n)
	}

	// The Pair-constructing dot-product route: Zip then Map. The pair is
	// built inline inside the fused kernel and never touches memory.
	dp := Map(func(p Pair[float64, float64]) float64 { return p.Fst * p.Snd },
		Zip(FromSlice(a), FromSlice(b)))
	if n := testing.AllocsPerRun(100, func() { allocSinkF = Sum(dp) }); n != 0 {
		t.Fatalf("dot-product allocated %.1f per run, want 0 (fused pair kernel)", n)
	}

	// Fusion survives parallel-split restriction: a Split slice of the
	// pipeline reduces with the rebased kernel, still zero allocations.
	half := Split(zw, domain.Range{Lo: len(a) / 2, Hi: len(a)})
	if n := testing.AllocsPerRun(100, func() { allocSinkF = Sum(half) }); n != 0 {
		t.Fatalf("split zipwith-sum allocated %.1f per run, want 0 (rebased fused kernel)", n)
	}
}

// concatMapSumAllocs measures per-traversal allocations of a concatMap nest
// with block-driven inner pipelines of the given length.
func concatMapSumAllocs(inner int) float64 {
	const outer = 64
	xs := make([]int64, outer)
	for i := range xs {
		xs[i] = int64(i)
	}
	it := ConcatMap(func(v int64) Iter[int64] {
		return Map(func(j int) int64 { return v + int64(j) }, Range(inner))
	}, FromSlice(xs))
	return testing.AllocsPerRun(20, func() { allocSink = Sum(it) })
}

// TestConcatMapAllocsInnerSizeIndependent: summing a nest costs a constant
// number of allocations per outer element (the inner iterator's closures)
// plus one shared arena — the count must not grow with inner length, which
// it would if each inner traversal allocated its own staging buffer.
func TestConcatMapAllocsInnerSizeIndependent(t *testing.T) {
	small := concatMapSumAllocs(blockMin * 2)
	large := concatMapSumAllocs(blockMin * 32)
	if small != large {
		t.Fatalf("concatMap Sum allocations scale with inner length: %.1f at %d vs %.1f at %d",
			small, blockMin*2, large, blockMin*32)
	}
}

// TestConcatMapArenaReuse: the nest's staging arena is allocated once per
// traversal and shared by every inner iterator. Without it each of the
// outer elements would allocate its own BlockSize staging buffer — outer x
// BlockSize x 8 bytes per traversal; with it the byte volume must stay well
// under one buffer per outer element. The inner pipeline is a bare Range
// whose kernel writes the staging buffer directly, so the measurement
// isolates the consumer-side buffer the arena owns (a type-changing map
// kernel would add its own per-traversal scratch on top).
func TestConcatMapArenaReuse(t *testing.T) {
	const outer = 128
	const inner = 512 // > BlockSize so inner loops stage through full blocks
	xs := make([]int, outer)
	it := ConcatMap(func(v int) Iter[int] { return Range(inner) }, FromSlice(xs))
	allocSink = int64(Sum(it)) // warm up lazily-initialized runtime state

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const runs = 10
	for i := 0; i < runs; i++ {
		allocSink = int64(Sum(it))
	}
	runtime.ReadMemStats(&after)
	perRun := float64(after.TotalAlloc-before.TotalAlloc) / runs
	limit := float64(outer) * BlockSize * 8 / 4
	if perRun > limit {
		t.Fatalf("concatMap Sum allocates %.0f bytes per traversal, want < %.0f (shared arena, not a buffer per outer element)",
			perRun, limit)
	}
}

// pipelineSumAllocs measures the per-traversal allocations of a
// map-filter-sum pipeline over n elements.
func pipelineSumAllocs(n int) float64 {
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i % 101)
	}
	it := Filter(func(v int64) bool { return v%3 == 0 },
		Map(func(v int64) int64 { return v * 7 }, FromSlice(xs)))
	return testing.AllocsPerRun(50, func() { allocSink = Sum(it) })
}

// TestPipelineSumAllocsSizeIndependent: block traversal allocates its kernel
// and one BlockSize buffer per traversal — a small constant that must not
// scale with the input (per-element drivers that box or append would).
func TestPipelineSumAllocsSizeIndependent(t *testing.T) {
	small := pipelineSumAllocs(1 << 10)
	large := pipelineSumAllocs(1 << 16)
	if small != large {
		t.Fatalf("pipeline Sum allocations scale with input: %.1f at 1Ki vs %.1f at 64Ki", small, large)
	}
	if small > 8 {
		t.Fatalf("pipeline Sum allocates %.1f per traversal, want <= 8 (kernel + scratch only)", small)
	}
}

// TestToSlicePresizes: materializing a flat pipeline must allocate the output
// exactly once at full size (plus O(1) kernel scratch), and a filtered
// pipeline must pre-size its output from the pre-filter length so appends
// never regrow it.
func TestToSlicePresizes(t *testing.T) {
	xs := make([]int64, 1<<14)
	for i := range xs {
		xs[i] = int64(i % 89)
	}

	flat := Map(func(v int64) int64 { return v + 1 }, FromSlice(xs))
	n := testing.AllocsPerRun(20, func() { allocSink = ToSlice(flat)[0] })
	if n > 4 {
		t.Fatalf("ToSlice of flat pipeline allocated %.1f per run, want <= 4 (output + kernel scratch)", n)
	}

	filtered := Filter(func(v int64) bool { return v%2 == 0 }, FromSlice(xs))
	out := ToSlice(filtered)
	if cap(out) != len(xs) {
		t.Fatalf("ToSlice of filtered pipeline: cap %d, want pre-sized %d (append must never regrow)",
			cap(out), len(xs))
	}
	fn := testing.AllocsPerRun(20, func() { allocSink = ToSlice(filtered)[0] })
	if fn > 4 {
		t.Fatalf("ToSlice of filtered pipeline allocated %.1f per run, want <= 4", fn)
	}
}

// TestHistogramAllocsSizeIndependent: the histogram consumer's block path
// must reuse one scratch buffer, so allocations do not scale with input.
func TestHistogramAllocsSizeIndependent(t *testing.T) {
	measure := func(n int) float64 {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(i)
		}
		it := Map(func(v int64) int { return int(v % 32) }, FromSlice(xs))
		return testing.AllocsPerRun(20, func() { allocSink = Histogram(32, it)[3] })
	}
	small, large := measure(1<<10), measure(1<<15)
	if small != large {
		t.Fatalf("Histogram allocations scale with input: %.1f at 1Ki vs %.1f at 32Ki", small, large)
	}
}
