// Allocation-count regression tests for the block engine's slice-backed
// fast paths. The race detector instruments allocations, so these only run
// in normal builds; CI's race job covers the same paths for correctness.

//go:build !race

package iter

import "testing"

var allocSink int64

// TestSumSliceBackedZeroAllocs: summing a slice-backed iterator must range
// over the backing array directly — zero allocations, not even a buffer.
func TestSumSliceBackedZeroAllocs(t *testing.T) {
	xs := make([]int64, 1<<14)
	for i := range xs {
		xs[i] = int64(i)
	}
	it := FromSlice(xs)
	if n := testing.AllocsPerRun(100, func() { allocSink = Sum(it) }); n != 0 {
		t.Fatalf("Sum over slice-backed iterator allocated %.1f per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { allocSink = int64(Count(it)) }); n != 0 {
		t.Fatalf("Count over slice-backed iterator allocated %.1f per run, want 0", n)
	}
}

// pipelineSumAllocs measures the per-traversal allocations of a
// map-filter-sum pipeline over n elements.
func pipelineSumAllocs(n int) float64 {
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i % 101)
	}
	it := Filter(func(v int64) bool { return v%3 == 0 },
		Map(func(v int64) int64 { return v * 7 }, FromSlice(xs)))
	return testing.AllocsPerRun(50, func() { allocSink = Sum(it) })
}

// TestPipelineSumAllocsSizeIndependent: block traversal allocates its kernel
// and one BlockSize buffer per traversal — a small constant that must not
// scale with the input (per-element drivers that box or append would).
func TestPipelineSumAllocsSizeIndependent(t *testing.T) {
	small := pipelineSumAllocs(1 << 10)
	large := pipelineSumAllocs(1 << 16)
	if small != large {
		t.Fatalf("pipeline Sum allocations scale with input: %.1f at 1Ki vs %.1f at 64Ki", small, large)
	}
	if small > 8 {
		t.Fatalf("pipeline Sum allocates %.1f per traversal, want <= 8 (kernel + scratch only)", small)
	}
}

// TestToSlicePresizes: materializing a flat pipeline must allocate the output
// exactly once at full size (plus O(1) kernel scratch), and a filtered
// pipeline must pre-size its output from the pre-filter length so appends
// never regrow it.
func TestToSlicePresizes(t *testing.T) {
	xs := make([]int64, 1<<14)
	for i := range xs {
		xs[i] = int64(i % 89)
	}

	flat := Map(func(v int64) int64 { return v + 1 }, FromSlice(xs))
	n := testing.AllocsPerRun(20, func() { allocSink = ToSlice(flat)[0] })
	if n > 4 {
		t.Fatalf("ToSlice of flat pipeline allocated %.1f per run, want <= 4 (output + kernel scratch)", n)
	}

	filtered := Filter(func(v int64) bool { return v%2 == 0 }, FromSlice(xs))
	out := ToSlice(filtered)
	if cap(out) != len(xs) {
		t.Fatalf("ToSlice of filtered pipeline: cap %d, want pre-sized %d (append must never regrow)",
			cap(out), len(xs))
	}
	fn := testing.AllocsPerRun(20, func() { allocSink = ToSlice(filtered)[0] })
	if fn > 4 {
		t.Fatalf("ToSlice of filtered pipeline allocated %.1f per run, want <= 4", fn)
	}
}

// TestHistogramAllocsSizeIndependent: the histogram consumer's block path
// must reuse one scratch buffer, so allocations do not scale with input.
func TestHistogramAllocsSizeIndependent(t *testing.T) {
	measure := func(n int) float64 {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(i)
		}
		it := Map(func(v int64) int { return int(v % 32) }, FromSlice(xs))
		return testing.AllocsPerRun(20, func() { allocSink = Histogram(32, it)[3] })
	}
	small, large := measure(1<<10), measure(1<<15)
	if small != large {
		t.Fatalf("Histogram allocations scale with input: %.1f at 1Ki vs %.1f at 32Ki", small, large)
	}
}
