package iter

import "fmt"

// Histogram counts, for each bin in [0, n), how many elements of it fall in
// that bin. Out-of-range bins are dropped (tpacf relies on clamping done by
// its scoring function, so dropping keeps the skeleton total). Conceptually
// this converts the fused iterator to a collector whose worker mutates the
// bin array in place (paper §3.1 "Collectors"); the block engine inlines
// that worker into the block loop, so slice-backed pipelines update bins
// with no per-element calls at all.
func Histogram(n int, it Iter[int]) []int64 {
	if n < 0 {
		panic(fmt.Sprintf("iter: Histogram(%d)", n))
	}
	bins := make([]int64, n)
	HistogramInto(bins, it)
	return bins
}

// Bin is one weighted histogram update: add W to bin I.
type Bin[W Number] struct {
	I int
	W W
}

// WeightedHistogram accumulates, for each bin in [0, n), the total weight
// of updates targeting that bin. cutcp's floating-point histogram (paper
// §1, §4.5) is WeightedHistogram over grid-point potentials. Updates to
// out-of-range bins are dropped.
func WeightedHistogram[W Number](n int, it Iter[Bin[W]]) []W {
	if n < 0 {
		panic(fmt.Sprintf("iter: WeightedHistogram(%d)", n))
	}
	bins := make([]W, n)
	WeightedHistogramInto(bins, it)
	return bins
}

// HistogramInto adds it's counts into an existing bin array, enabling
// per-thread private histograms that are merged afterwards (the two-level
// reduction of paper §3.4).
func HistogramInto(bins []int64, it Iter[int]) {
	n := len(bins)
	if it.kind == KIdxFlat && blockDriverEnabled {
		ix := it.idx
		if back := ix.backing(); back != nil {
			for _, b := range back {
				if b >= 0 && b < n {
					bins[b]++
				}
			}
			return
		}
		if gen := ix.fillGen(); gen != nil && ix.N >= blockMin {
			g := gen()
			buf := make([]int, blockLen(ix.N))
			for base := 0; base < ix.N; base += BlockSize {
				end := base + BlockSize
				if end > ix.N {
					end = ix.N
				}
				b := buf[:end-base]
				g(b, base)
				for _, v := range b {
					if v >= 0 && v < n {
						bins[v]++
					}
				}
			}
			return
		}
	}
	Collect(it)(func(b int) {
		if b >= 0 && b < n {
			bins[b]++
		}
	})
}

// WeightedHistogramInto adds it's weighted updates into an existing array.
func WeightedHistogramInto[W Number](bins []W, it Iter[Bin[W]]) {
	n := len(bins)
	if it.kind == KIdxFlat && blockDriverEnabled {
		ix := it.idx
		if back := ix.backing(); back != nil {
			for _, u := range back {
				if u.I >= 0 && u.I < n {
					bins[u.I] += u.W
				}
			}
			return
		}
		if gen := ix.fillGen(); gen != nil && ix.N >= blockMin {
			g := gen()
			buf := make([]Bin[W], blockLen(ix.N))
			for base := 0; base < ix.N; base += BlockSize {
				end := base + BlockSize
				if end > ix.N {
					end = ix.N
				}
				b := buf[:end-base]
				g(b, base)
				for _, u := range b {
					if u.I >= 0 && u.I < n {
						bins[u.I] += u.W
					}
				}
			}
			return
		}
	}
	Collect(it)(func(u Bin[W]) {
		if u.I >= 0 && u.I < n {
			bins[u.I] += u.W
		}
	})
}
