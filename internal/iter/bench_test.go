package iter

import "testing"

// Micro-benchmarks for the fusion machinery itself: the per-element cost
// of composed pipelines against hand-written loops, per constructor.

var benchData = func() []int64 {
	xs := make([]int64, 1<<15)
	for i := range xs {
		xs[i] = int64(i % 1003)
	}
	return xs
}()

var benchSink int64

func BenchmarkSumFlat(b *testing.B) {
	it := FromSlice(benchData)
	b.Run("pipeline", func(b *testing.B) {
		for b.Loop() {
			benchSink = Sum(it)
		}
	})
	b.Run("handwritten", func(b *testing.B) {
		for b.Loop() {
			var acc int64
			for _, v := range benchData {
				acc += v
			}
			benchSink = acc
		}
	})
}

func BenchmarkMapMapSumFusion(b *testing.B) {
	it := Map(func(x int64) int64 { return x + 1 },
		Map(func(x int64) int64 { return x * 3 }, FromSlice(benchData)))
	b.Run("pipeline", func(b *testing.B) {
		for b.Loop() {
			benchSink = Sum(it)
		}
	})
	b.Run("handwritten", func(b *testing.B) {
		for b.Loop() {
			var acc int64
			for _, v := range benchData {
				acc += v*3 + 1
			}
			benchSink = acc
		}
	})
}

func BenchmarkFilterSum(b *testing.B) {
	pred := func(v int64) bool { return v%3 == 0 }
	it := Filter(pred, FromSlice(benchData))
	b.Run("fused-kidxfilter", func(b *testing.B) {
		b.ReportAllocs()
		for b.Loop() {
			benchSink = Sum(it)
		}
	})
	// The literal paper encoding for comparison: an indexer of
	// one-element steppers, which Go cannot erase.
	literal := IdxNest(MapIdx(func(v int64) Iter[int64] {
		return StepFlat(FilterStep(pred, UnitStep(v)))
	}, IdxOf(benchData)))
	b.Run("literal-idxnest-of-steppers", func(b *testing.B) {
		b.ReportAllocs()
		for b.Loop() {
			benchSink = Sum(literal)
		}
	})
	b.Run("handwritten", func(b *testing.B) {
		for b.Loop() {
			var acc int64
			for _, v := range benchData {
				if pred(v) {
					acc += v
				}
			}
			benchSink = acc
		}
	})
}

func BenchmarkConcatMapSum(b *testing.B) {
	xs := make([]int, 1024)
	for i := range xs {
		xs[i] = i % 29
	}
	it := ConcatMap(func(x int) Iter[int64] {
		return IdxFlat(Idx[int64]{N: x, At: func(j int) int64 { return int64(j) }})
	}, FromSlice(xs))
	b.Run("pipeline", func(b *testing.B) {
		for b.Loop() {
			benchSink = Sum(it)
		}
	})
	b.Run("handwritten", func(b *testing.B) {
		for b.Loop() {
			var acc int64
			for _, x := range xs {
				for j := 0; j < x; j++ {
					acc += int64(j)
				}
			}
			benchSink = acc
		}
	})
}

func BenchmarkZipWithSum(b *testing.B) {
	it := ZipWith(func(a, c int64) int64 { return a * c }, FromSlice(benchData), FromSlice(benchData))
	b.Run("pipeline", func(b *testing.B) {
		for b.Loop() {
			benchSink = Sum(it)
		}
	})
	b.Run("handwritten", func(b *testing.B) {
		for b.Loop() {
			var acc int64
			for i, v := range benchData {
				acc += v * benchData[i]
			}
			benchSink = acc
		}
	})
}

func BenchmarkHistogram(b *testing.B) {
	it := Map(func(x int64) int { return int(x % 64) }, FromSlice(benchData))
	for b.Loop() {
		benchSink = Histogram(64, it)[0]
	}
}
