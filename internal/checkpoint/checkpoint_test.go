package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func testRecords() []Record {
	return []Record{
		{Job: "job-a", Task: 0, Kind: KindResult, Payload: []byte("r0")},
		{Job: "job-b", Task: 0, Kind: KindResult, Payload: []byte("other job")},
		{Job: "job-a", Task: 2, Kind: KindFailed, Attempts: 3, Payload: []byte("poison")},
		{Job: "job-a", Task: 1, Kind: KindResult, Payload: nil},
	}
}

func assertJobA(t *testing.T, recs []Record) {
	t.Helper()
	if len(recs) != 3 {
		t.Fatalf("job-a records = %d, want 3 (%+v)", len(recs), recs)
	}
	if recs[0].Task != 0 || !bytes.Equal(recs[0].Payload, []byte("r0")) {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if recs[1].Kind != KindFailed || recs[1].Attempts != 3 || string(recs[1].Payload) != "poison" {
		t.Fatalf("record 1 = %+v", recs[1])
	}
	if recs[2].Task != 1 || len(recs[2].Payload) != 0 {
		t.Fatalf("record 2 = %+v", recs[2])
	}
}

func TestMemStoreRoundTrip(t *testing.T) {
	m := NewMem()
	for _, rec := range testRecords() {
		if err := m.Append(rec); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	recs, err := m.Load("job-a")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	assertJobA(t, recs)
	if err := m.Append(Record{Job: "x", Kind: Kind(9)}); err == nil {
		t.Fatal("invalid kind accepted")
	}
}

func TestWALRoundTripAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for _, rec := range testRecords() {
		if err := w.Append(rec); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	recs, err := w.Load("job-a")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	assertJobA(t, recs)
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// A "restarted master": a fresh handle must see the same records.
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	recs, err = w2.Load("job-a")
	if err != nil {
		t.Fatalf("load after reopen: %v", err)
	}
	assertJobA(t, recs)
	if w2.Records() != 4 {
		t.Fatalf("Records = %d, want 4", w2.Records())
	}
	// And appending after a reopen lands on a clean frame boundary.
	if err := w2.Append(Record{Job: "job-a", Task: 3, Kind: KindResult, Payload: []byte("late")}); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	recs, _ = w2.Load("job-a")
	if len(recs) != 4 || string(recs[3].Payload) != "late" {
		t.Fatalf("post-reopen append lost: %+v", recs)
	}
}

func TestWALTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := w.Append(Record{Job: "j", Task: 0, Kind: KindResult, Payload: []byte("keep")}); err != nil {
		t.Fatalf("append: %v", err)
	}
	w.Close()

	// Simulate a crash mid-append: half a record at the tail.
	torn := EncodeRecord(Record{Job: "j", Task: 1, Kind: KindResult, Payload: []byte("lost")})
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("reopen raw: %v", err)
	}
	if _, err := f.Write(torn[:len(torn)-3]); err != nil {
		t.Fatalf("write torn tail: %v", err)
	}
	f.Close()

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("reopen torn: %v", err)
	}
	defer w2.Close()
	recs, _ := w2.Load("j")
	if len(recs) != 1 || string(recs[0].Payload) != "keep" {
		t.Fatalf("torn WAL records = %+v, want the one intact record", recs)
	}
	// The torn bytes must be gone so new appends frame cleanly.
	if err := w2.Append(Record{Job: "j", Task: 1, Kind: KindResult, Payload: []byte("redo")}); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	w2.Close()
	w3, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("final reopen: %v", err)
	}
	defer w3.Close()
	recs, _ = w3.Load("j")
	if len(recs) != 2 || string(recs[1].Payload) != "redo" {
		t.Fatalf("records after redo = %+v", recs)
	}
}

func TestWALRejectsCorruptRecordAndForeignFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bits.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	w.Append(Record{Job: "j", Task: 0, Kind: KindResult, Payload: []byte("aaaa")})
	w.Append(Record{Job: "j", Task: 1, Kind: KindResult, Payload: []byte("bbbb")})
	w.Close()

	// Flip a bit inside the first record: it and everything after become
	// unreadable (the framing cannot resynchronize past a bad CRC).
	data, _ := os.ReadFile(path)
	data[len(WALMagic)+10] ^= 0x01
	os.WriteFile(path, data, 0o644)
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("reopen corrupt: %v", err)
	}
	recs, _ := w2.Load("j")
	w2.Close()
	if len(recs) != 0 {
		t.Fatalf("corrupt record decoded: %+v", recs)
	}

	// A file without the magic is refused outright.
	foreign := filepath.Join(dir, "foreign")
	os.WriteFile(foreign, []byte("definitely not a WAL"), 0o644)
	if _, err := OpenWAL(foreign); !errors.Is(err, ErrNotWAL) {
		t.Fatalf("foreign file error = %v, want ErrNotWAL", err)
	}
}

func TestWALCompactDropsDeadJobsAndSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compact.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Two completed jobs' task records interleaved with a live job's.
	appendAll := func(recs ...Record) {
		t.Helper()
		for _, rec := range recs {
			if err := w.Append(rec); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
	}
	appendAll(
		Record{Job: "done-1", Kind: KindJobSpec, Payload: []byte("spec1")},
		Record{Job: "live", Kind: KindJobSpec, Payload: []byte("spec-live")},
		Record{Job: "done-1", Task: 0, Kind: KindResult, Payload: []byte("d1r0")},
		Record{Job: "live", Task: 0, Kind: KindResult, Payload: []byte("lr0")},
		Record{Job: "done-1", Kind: KindJobDone, Payload: []byte("summary1")},
		Record{Job: "done-2", Kind: KindJobSpec, Payload: []byte("spec2")},
		Record{Job: "done-2", Task: 0, Kind: KindFailed, Attempts: 3, Payload: []byte("poison")},
		Record{Job: "done-2", Kind: KindJobDone, Payload: []byte("summary2")},
	)
	before := w.Records()
	// Keep live jobs whole; completed jobs shrink to their summaries.
	done := map[string]bool{"done-1": true, "done-2": true}
	if err := w.Compact(func(rec Record) bool {
		return !done[rec.Job] || rec.Kind == KindJobDone
	}); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if got := w.Records(); got != 4 {
		t.Fatalf("Records after compact = %d (was %d), want 4", got, before)
	}
	// Appends after compaction land on a clean frame boundary.
	if err := w.Append(Record{Job: "live", Task: 1, Kind: KindResult, Payload: []byte("lr1")}); err != nil {
		t.Fatalf("append after compact: %v", err)
	}
	w.Close()

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	live, _ := w2.Load("live")
	if len(live) != 3 || string(live[2].Payload) != "lr1" {
		t.Fatalf("live job after compact+reopen = %+v", live)
	}
	d1, _ := w2.Load("done-1")
	if len(d1) != 1 || d1[0].Kind != KindJobDone || string(d1[0].Payload) != "summary1" {
		t.Fatalf("done-1 after compact = %+v, want only the summary", d1)
	}
	all, _ := w2.LoadAll()
	if len(all) != 5 {
		t.Fatalf("LoadAll after reopen = %d records, want 5", len(all))
	}
	// Relative order of survivors is preserved.
	if all[0].Job != "live" || all[0].Kind != KindJobSpec {
		t.Fatalf("first surviving record = %+v, want live's spec", all[0])
	}
}

func TestMemCompactAndLoadAll(t *testing.T) {
	m := NewMem()
	for _, rec := range testRecords() {
		if err := m.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Compact(func(rec Record) bool { return rec.Job == "job-a" }); err != nil {
		t.Fatal(err)
	}
	all, err := m.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	assertJobA(t, all)
}

func TestDecodeRecordsStopsAtGarbage(t *testing.T) {
	var stream []byte
	stream = append(stream, EncodeRecord(Record{Job: "j", Task: 7, Kind: KindResult, Payload: []byte("x")})...)
	good := len(stream)
	stream = append(stream, 0xFF, 0xFF, 0xFF, 0x7F) // absurd length header

	recs, n := DecodeRecords(stream)
	if len(recs) != 1 || recs[0].Task != 7 {
		t.Fatalf("recs = %+v", recs)
	}
	if n != good {
		t.Fatalf("valid prefix = %d, want %d", n, good)
	}
}
