package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"

	"triolet/internal/serial"
)

// File-backed write-ahead log. On-disk layout:
//
//	magic:   8 bytes "TRIOWAL1"
//	record:  u32 LE frame length ‖ frame
//	frame:   body ‖ u32 LE crc32(body)   (serial CRC framing)
//	body:    String(job) ‖ U8(kind) ‖ Int(task) ‖ Int(attempts) ‖
//	         RawBytes(payload)           (internal/serial encoding)
//
// Appends are single write(2) calls followed by fsync, so a record is
// either fully present or torn at the tail. Opening the file scans the
// valid prefix and truncates anything after it — a torn tail from a crash
// mid-append is discarded, never misparsed, and later appends start from a
// clean frame boundary. A flipped bit anywhere in a record fails its CRC
// and ends the valid prefix there (everything after an unreadable record
// is unreachable by the framing, so it is dropped too).

// WALMagic identifies a checkpoint WAL file.
const WALMagic = "TRIOWAL1"

// ErrNotWAL reports that an existing file does not carry the WAL magic.
var ErrNotWAL = errors.New("checkpoint: not a WAL file")

// maxWALRecord caps one record's frame size (64 MiB): a corrupt length
// header must not read as a multi-gigabyte allocation.
const maxWALRecord = 64 << 20

// EncodeRecord frames one record for the WAL (length ‖ body ‖ CRC).
func EncodeRecord(rec Record) []byte {
	w := serial.NewWriter(len(rec.Payload) + len(rec.Job) + 64)
	w.String(rec.Job)
	w.U8(uint8(rec.Kind))
	w.Int(rec.Task)
	w.Int(rec.Attempts)
	w.RawBytes(rec.Payload)
	w.FinishCRC()
	frame := w.Bytes()
	out := make([]byte, 0, 4+len(frame))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(frame)))
	return append(out, frame...)
}

// DecodeRecords parses the longest valid prefix of a record stream (the
// file content after the magic). It returns the decoded records and the
// number of bytes that prefix occupies; a torn or corrupt tail simply ends
// the prefix. It never panics on arbitrary input and never allocates more
// than the input holds — the WAL fuzz target pins both properties.
func DecodeRecords(b []byte) (recs []Record, n int) {
	for {
		rest := b[n:]
		if len(rest) < 4 {
			return recs, n
		}
		frameLen := int(binary.LittleEndian.Uint32(rest[:4]))
		if frameLen < 4 || frameLen > maxWALRecord || frameLen > len(rest)-4 {
			return recs, n
		}
		body, ok := serial.VerifyCRC(rest[4 : 4+frameLen])
		if !ok {
			return recs, n
		}
		r := serial.NewReader(body)
		rec := Record{
			Job:      r.String(),
			Kind:     Kind(r.U8()),
			Task:     r.Int(),
			Attempts: r.Int(),
			Payload:  r.RawBytes(),
		}
		if r.Err() != nil || r.Remaining() != 0 || !rec.Kind.valid() {
			return recs, n
		}
		recs = append(recs, rec)
		n += 4 + frameLen
	}
}

// WAL is the file-backed Store.
type WAL struct {
	mu   sync.Mutex
	path string
	f    *os.File
	recs []Record // every valid record in the file, all jobs
}

// OpenWAL opens (or creates) the WAL at path. An existing file is scanned:
// its valid record prefix becomes the in-memory snapshot and any torn tail
// is truncated away so subsequent appends land on a frame boundary.
func OpenWAL(path string) (*WAL, error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("checkpoint: open WAL: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open WAL: %w", err)
	}
	w := &WAL{path: path, f: f}
	if len(data) == 0 {
		if _, err := f.Write([]byte(WALMagic)); err != nil {
			f.Close()
			return nil, fmt.Errorf("checkpoint: write WAL magic: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("checkpoint: sync WAL: %w", err)
		}
		return w, nil
	}
	if len(data) < len(WALMagic) || string(data[:len(WALMagic)]) != WALMagic {
		f.Close()
		return nil, fmt.Errorf("%w: %s", ErrNotWAL, path)
	}
	recs, valid := DecodeRecords(data[len(WALMagic):])
	w.recs = recs
	end := int64(len(WALMagic) + valid)
	if end < int64(len(data)) {
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, fmt.Errorf("checkpoint: truncate torn WAL tail: %w", err)
		}
	}
	if _, err := f.Seek(end, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: seek WAL: %w", err)
	}
	return w, nil
}

// Append durably writes one record: a single write, then fsync. The record
// is visible to Load as soon as Append returns.
func (w *WAL) Append(rec Record) error {
	if !rec.Kind.valid() {
		return fmt.Errorf("checkpoint: invalid record kind %d", rec.Kind)
	}
	rec.Payload = append([]byte(nil), rec.Payload...)
	frame := EncodeRecord(rec)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("checkpoint: WAL is closed")
	}
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("checkpoint: append WAL record: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync WAL: %w", err)
	}
	w.recs = append(w.recs, rec)
	return nil
}

// Load returns job's records in append order.
func (w *WAL) Load(job string) ([]Record, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []Record
	for _, rec := range w.recs {
		if rec.Job == job {
			out = append(out, rec)
		}
	}
	return out, nil
}

// LoadAll returns every record in the WAL, all jobs, in append order.
func (w *WAL) LoadAll() ([]Record, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Record(nil), w.recs...), nil
}

// Compact rewrites the WAL keeping only records keep accepts: an
// append-only registry under a long-running job service would otherwise
// grow without bound as jobs complete. The surviving records are written
// to a sibling temp file (magic + records, fsynced) which is renamed over
// the WAL path — the same atomicity the torn-tail scan relies on: a crash
// anywhere during compaction leaves either the complete old file or the
// complete new one. The open handle switches to the new file under the
// store mutex, so concurrent Append/Load see a clean cutover.
func (w *WAL) Compact(keep func(Record) bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("checkpoint: WAL is closed")
	}
	kept := make([]Record, 0, len(w.recs))
	for _, rec := range w.recs {
		if keep(rec) {
			kept = append(kept, rec)
		}
	}
	if len(kept) == len(w.recs) {
		return nil // nothing to reclaim
	}
	tmpPath := w.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: compact WAL: %w", err)
	}
	buf := []byte(WALMagic)
	for _, rec := range kept {
		buf = append(buf, EncodeRecord(rec)...)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("checkpoint: compact WAL write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("checkpoint: compact WAL sync: %w", err)
	}
	if err := os.Rename(tmpPath, w.path); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("checkpoint: compact WAL rename: %w", err)
	}
	old := w.f
	w.f = tmp
	w.recs = kept
	old.Close()
	return nil
}

// Records reports how many records the WAL holds across all jobs.
func (w *WAL) Records() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.recs)
}

// Close closes the underlying file; further Appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
