package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// Fuzz target over the WAL record decoder: the WAL is re-read after process
// crashes, so the decoder must be total — arbitrary bytes (torn tails,
// bit rot, foreign files) yield a valid prefix and a stop point, never a
// panic or a pathological allocation.

func FuzzWALRecords(f *testing.F) {
	var seed []byte
	seed = append(seed, EncodeRecord(Record{Job: "job", Task: 1, Kind: KindResult, Payload: []byte("result")})...)
	seed = append(seed, EncodeRecord(Record{Job: "job", Task: 2, Kind: KindFailed, Attempts: 3, Payload: []byte("err")})...)
	f.Add(seed)
	f.Add(seed[:len(seed)-5])                      // torn tail
	f.Add([]byte{})                                //
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0}) // absurd length header
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, n := DecodeRecords(data)
		if n < 0 || n > len(data) {
			t.Fatalf("valid prefix %d out of range [0,%d]", n, len(data))
		}
		// Re-encoding the decoded prefix must reproduce it byte-for-byte:
		// the encoder and decoder agree on the framing.
		var re []byte
		for _, rec := range recs {
			re = append(re, EncodeRecord(rec)...)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encoded prefix diverges:\n got %x\nwant %x", re, data[:n])
		}
		// And decoding the re-encoding is a fixed point.
		recs2, n2 := DecodeRecords(re)
		if len(recs2) != len(recs) || n2 != len(re) {
			t.Fatalf("re-decode: %d records/%d bytes, want %d/%d", len(recs2), n2, len(recs), len(re))
		}
		// Compaction over the same arbitrary stream: open the bytes as a
		// WAL (torn-tail truncation included), compact with a filter, and
		// the surviving file must hold exactly the records the filter kept
		// from the valid prefix, in order — whatever garbage followed them.
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, append([]byte(WALMagic), data...), 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("open fuzzed WAL: %v", err)
		}
		keep := func(rec Record) bool { return rec.Kind != KindFailed }
		if err := w.Compact(keep); err != nil {
			t.Fatalf("compact: %v", err)
		}
		var want []Record
		for _, rec := range recs {
			if keep(rec) {
				want = append(want, rec)
			}
		}
		got, err := w.LoadAll()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		checkSameRecords(t, "after compact", got, want)
		// The compacted file must survive a fresh open byte-for-byte.
		w2, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("reopen compacted WAL: %v", err)
		}
		got2, err := w2.LoadAll()
		if err != nil {
			t.Fatal(err)
		}
		w2.Close()
		checkSameRecords(t, "after reopen", got2, want)
	})
}

func checkSameRecords(t *testing.T, when string, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", when, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Job != w.Job || g.Kind != w.Kind || g.Task != w.Task ||
			g.Attempts != w.Attempts || !bytes.Equal(g.Payload, w.Payload) {
			t.Fatalf("%s: record %d = %+v, want %+v", when, i, g, w)
		}
	}
}
