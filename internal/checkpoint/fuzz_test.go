package checkpoint

import (
	"bytes"
	"testing"
)

// Fuzz target over the WAL record decoder: the WAL is re-read after process
// crashes, so the decoder must be total — arbitrary bytes (torn tails,
// bit rot, foreign files) yield a valid prefix and a stop point, never a
// panic or a pathological allocation.

func FuzzWALRecords(f *testing.F) {
	var seed []byte
	seed = append(seed, EncodeRecord(Record{Job: "job", Task: 1, Kind: KindResult, Payload: []byte("result")})...)
	seed = append(seed, EncodeRecord(Record{Job: "job", Task: 2, Kind: KindFailed, Attempts: 3, Payload: []byte("err")})...)
	f.Add(seed)
	f.Add(seed[:len(seed)-5])                      // torn tail
	f.Add([]byte{})                                //
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0}) // absurd length header
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, n := DecodeRecords(data)
		if n < 0 || n > len(data) {
			t.Fatalf("valid prefix %d out of range [0,%d]", n, len(data))
		}
		// Re-encoding the decoded prefix must reproduce it byte-for-byte:
		// the encoder and decoder agree on the framing.
		var re []byte
		for _, rec := range recs {
			re = append(re, EncodeRecord(rec)...)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encoded prefix diverges:\n got %x\nwant %x", re, data[:n])
		}
		// And decoding the re-encoding is a fixed point.
		recs2, n2 := DecodeRecords(re)
		if len(recs2) != len(recs) || n2 != len(re) {
			t.Fatalf("re-decode: %d records/%d bytes, want %d/%d", len(recs2), n2, len(recs), len(re))
		}
	})
}
