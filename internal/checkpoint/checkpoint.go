// Package checkpoint persists per-task farm progress so a restarted master
// resumes a named job instead of recomputing it. The paper's runtime has no
// such layer — a Triolet job that loses its master loses every completed
// task (§3.4 assumes short-lived jobs on a lossless fabric); growing toward
// long-running production jobs makes completed work worth durably keeping.
//
// A Store is an append-only log of Records. Session.FarmOpts appends one
// record per finished task — a result, or a quarantined failure — before
// counting the task done (write-ahead), and on startup replays the job's
// records to skip already-finished tasks. Two implementations: Mem (tests,
// single-process retries) and WAL (a file-backed, CRC-framed append-only
// log that survives process death; see wal.go).
package checkpoint

import (
	"fmt"
	"sync"
)

// Kind distinguishes record types in the log.
type Kind uint8

const (
	// KindResult records a completed task and carries its result bytes.
	KindResult Kind = 1
	// KindFailed records a quarantined task — one that exhausted its
	// attempts — and carries the final error message. On resume the task
	// is not retried: a poison task stays quarantined across restarts.
	KindFailed Kind = 2
	// KindJobSpec records a job's admission into the job service: the
	// payload is the service's encoding of the full job spec (kernel,
	// weight, budgets, every task's input bytes), written before Submit
	// returns, so a restarted service re-queues exactly what was admitted.
	KindJobSpec Kind = 3
	// KindJobDone records a job reaching a terminal state; the payload is
	// the service's completion summary. A job with a spec record and no
	// done record was queued or running when the process died and must be
	// resumed.
	KindJobDone Kind = 4
)

func (k Kind) valid() bool {
	return k == KindResult || k == KindFailed || k == KindJobSpec || k == KindJobDone
}

// Record is one per-task log entry.
type Record struct {
	// Job names the farm run; one store may interleave several jobs.
	Job string
	// Task is the task index within the job's task list.
	Task int
	// Kind says whether Payload is a result or a failure message.
	Kind Kind
	// Attempts is how many executions the task consumed (failures only).
	Attempts int
	// Payload is the task result (KindResult) or error text (KindFailed).
	Payload []byte
}

// Store is an append-only checkpoint log. Implementations must be safe for
// concurrent use: the master appends while monitors may load snapshots.
type Store interface {
	// Append durably adds one record. A record must be readable by Load
	// once Append returns — the farm counts a task done only after its
	// record is stored.
	Append(rec Record) error
	// Load returns every stored record for job, in append order.
	Load(job string) ([]Record, error)
	// LoadAll returns every stored record across all jobs, in append
	// order — the job service's recovery scan.
	LoadAll() ([]Record, error)
	// Compact durably rewrites the store keeping only records for which
	// keep returns true, reclaiming the space of completed jobs. Records
	// that survive keep their relative order. Append/Load remain correct
	// after a Compact, and a crash during compaction must leave either
	// the old contents or the new — never a torn mixture.
	Compact(keep func(Record) bool) error
	// Close releases the store's resources.
	Close() error
}

// Mem is the in-memory Store: checkpointing semantics without durability.
// Useful in tests and for retry-within-one-process scenarios.
type Mem struct {
	mu   sync.Mutex
	recs []Record
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{} }

// Append adds one record.
func (m *Mem) Append(rec Record) error {
	if !rec.Kind.valid() {
		return fmt.Errorf("checkpoint: invalid record kind %d", rec.Kind)
	}
	rec.Payload = append([]byte(nil), rec.Payload...)
	m.mu.Lock()
	m.recs = append(m.recs, rec)
	m.mu.Unlock()
	return nil
}

// Load returns job's records in append order.
func (m *Mem) Load(job string) ([]Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Record
	for _, rec := range m.recs {
		if rec.Job == job {
			out = append(out, rec)
		}
	}
	return out, nil
}

// LoadAll returns every record in append order.
func (m *Mem) LoadAll() ([]Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Record(nil), m.recs...), nil
}

// Compact drops records keep rejects.
func (m *Mem) Compact(keep func(Record) bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	kept := m.recs[:0]
	for _, rec := range m.recs {
		if keep(rec) {
			kept = append(kept, rec)
		}
	}
	// Zero the tail so dropped payloads become collectable.
	for i := len(kept); i < len(m.recs); i++ {
		m.recs[i] = Record{}
	}
	m.recs = kept
	return nil
}

// Close is a no-op for the in-memory store.
func (m *Mem) Close() error { return nil }
