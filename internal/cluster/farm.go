// Task farm: the fault-tolerant counterpart of the collective skeletons.
// Collective kernels (scatter → compute → reduce) need every rank alive
// for the whole call; the farm instead streams independent tasks to
// workers one at a time, so when a worker is lost mid-run (ack timeouts, a
// fabric-reported crash, or a silent heartbeat) the master requeues that
// worker's in-flight task, keeps going with the survivors, and — if every
// worker dies — runs the remainder itself.
//
// On top of worker loss the farm supervises the tasks themselves: a kernel
// error or panic is a per-task failure retried on another worker up to
// MaxAttempts and then quarantined in FarmResult.Failed instead of killing
// the job; completed tasks can be written to a checkpoint.Store so a
// restarted master resumes a named job re-executing only unfinished work;
// and the whole run is cancellable through a context. The session degrades
// gracefully and reports the partial failure in FarmResult instead of
// deadlocking, which is exactly the behavior the paper's lossless-MPI
// runtime cannot offer (§3.4).
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"triolet/internal/checkpoint"
	"triolet/internal/mpi"
	"triolet/internal/serial"
	"triolet/internal/transport"
)

// Reserved user tags for the farm protocol (just below the control tag).
const (
	farmTaskTag   = mpi.MaxUserTag - 1
	farmResultTag = mpi.MaxUserTag - 2
	farmBeatTag   = mpi.MaxUserTag - 3
)

// defaultFarmHeartbeat is the worker beat interval when Config.FarmHeartbeat
// is unset.
const defaultFarmHeartbeat = time.Millisecond

// Collect-loop poll backoff: the master sleeps between polls when nothing
// has arrived, doubling from min to max. Results, heartbeats, and crash
// notifications reset the ladder, so a busy farm stays hot while an idle
// wait costs ~1 wakeup per millisecond instead of 20k/s.
const (
	collectBackoffMin = 50 * time.Microsecond
	collectBackoffMax = time.Millisecond
)

// FarmFn is a farm kernel body: one task in, one result out. It runs on
// whichever node the task lands on (a worker, or the master as fallback).
type FarmFn func(n *Node, task []byte) ([]byte, error)

var (
	farmMu       sync.RWMutex
	farmRegistry = map[string]FarmFn{}
)

// RegisterFarm installs a named farm kernel. Like RegisterWorker it is
// called once at init time and panics on duplicates. The same body is
// used worker-side (task loop) and master-side (fallback execution).
func RegisterFarm(name string, fn FarmFn) {
	farmMu.Lock()
	if _, dup := farmRegistry[name]; dup {
		farmMu.Unlock()
		panic(fmt.Sprintf("cluster: duplicate farm kernel %q", name))
	}
	farmRegistry[name] = fn
	farmMu.Unlock()
	RegisterWorker(name, func(n *Node) error { return farmWorker(n, fn) })
}

func lookupFarm(name string) (FarmFn, bool) {
	farmMu.RLock()
	defer farmMu.RUnlock()
	fn, ok := farmRegistry[name]
	return fn, ok
}

// resetFarmRegistry clears the farm kernel table (tests only).
func resetFarmRegistry() {
	farmMu.Lock()
	defer farmMu.Unlock()
	farmRegistry = map[string]FarmFn{}
}

// encodeTask frames one task assignment (stop=true carries no task).
// timing asks the worker to report the task's kernel time back on the
// heartbeat tag (see encodeTiming) — set when the master has an
// OnTaskTiming observer, one flag byte otherwise.
func encodeTask(stop bool, index int, payload []byte, timing bool) []byte {
	w := serial.NewWriter(len(payload) + 16)
	w.Bool(stop)
	w.Int(index)
	w.Bool(timing)
	w.RawBytes(payload)
	return w.Bytes()
}

// encodeTiming frames one per-task timing report: the payload of a
// timing beat. Timing rides the unacked beat path on purpose — losing a
// sample under faults only deprives the recalibrator of one observation,
// and beats coalesce/piggyback so the control-plane message budget is
// unchanged.
func encodeTiming(index int, elapsed time.Duration) []byte {
	w := serial.NewWriter(16)
	w.Int(index)
	w.U64(uint64(elapsed))
	return w.Bytes()
}

// decodeTiming parses a timing beat payload. ok is false for a plain
// liveness beat (empty payload) or a malformed one — both are just
// liveness signals to the caller.
func decodeTiming(payload []byte) (index int, elapsed time.Duration, ok bool) {
	if len(payload) == 0 {
		return 0, 0, false
	}
	r := serial.NewReader(payload)
	index = r.Int()
	elapsed = time.Duration(r.U64())
	if r.Err() != nil || r.Remaining() != 0 || elapsed < 0 {
		return 0, 0, false
	}
	return index, elapsed, true
}

// runFarmTask invokes the kernel with panic containment: a panicking
// FarmFn yields a per-task error carrying the panic value, not a dead
// rank with no diagnostic.
func runFarmTask(n *Node, fn FarmFn, task []byte) (out []byte, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("cluster: farm kernel panicked: %v", p)
		}
	}()
	return fn(n, task)
}

// farmWorker is the node-side task loop: receive, compute, reply, repeat
// until the stop frame. A helper goroutine sends liveness beats to the
// master every Config.FarmHeartbeat — also while the kernel is computing —
// so the master's health monitor can tell a long task from a dead worker.
func farmWorker(n *Node, fn FarmFn) error {
	interval := n.cfg.FarmHeartbeat
	if interval <= 0 {
		interval = defaultFarmHeartbeat
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval) //lint:allow fabrictime beat pacing is real-time by design; liveness deadlines are measured on the fabric clock master-side
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				// Beats are idempotent liveness signals: the master only
				// cares that they keep arriving, so they ride the unacked
				// coalesced path instead of costing a framed send plus an
				// ack each (see mpi.Comm.SendBeat).
				if err := n.Comm.SendBeat(0, farmBeatTag, nil); err != nil {
					return // master unreachable: the task loop will find out
				}
			}
		}
	}()
	defer func() {
		close(stop)
		wg.Wait()
	}()
	clk := clockOf(n)
	for {
		m, err := n.Comm.Recv(0, farmTaskTag)
		if err != nil {
			if errors.Is(err, mpi.ErrRankLost) {
				// The master stopped acknowledging us — it has retired this
				// worker (we were paused or partitioned) or died. Either
				// way the job's outcome is decided master-side; exiting the
				// task loop quietly keeps a zombie worker from aborting a
				// session that already wrote us off.
				return nil
			}
			return err
		}
		r := serial.NewReader(m.Payload)
		stopFrame := r.Bool()
		idx := r.Int()
		timing := r.Bool()
		task := r.RawBytes()
		if r.Err() != nil {
			return fmt.Errorf("cluster: node %d: malformed farm task: %w", n.Rank(), r.Err())
		}
		if stopFrame {
			return nil
		}
		start := clk.Now()
		out, ferr := runFarmTask(n, fn, task)
		if timing && ferr == nil {
			// Best-effort: a lost timing beat costs one recalibration
			// sample, nothing else. Sent before the result so coalescing
			// piggybacks it on (or ahead of) the result frame.
			_ = n.Comm.SendBeat(0, farmBeatTag, encodeTiming(idx, clk.Now().Sub(start)))
		}
		w := serial.NewWriter(len(out) + 16)
		w.Int(idx)
		w.Bool(ferr == nil)
		if ferr != nil {
			w.String(ferr.Error())
		} else {
			w.RawBytes(out)
		}
		if err := n.Comm.Send(0, farmResultTag, w.Bytes()); err != nil {
			if errors.Is(err, mpi.ErrRankLost) {
				return nil // retired mid-reply: same quiet exit as above
			}
			return err
		}
	}
}

// TaskFailure is one quarantined task: it failed MaxAttempts times (on
// workers, the master fallback, or both) and was excluded from the run so
// the remaining tasks could finish.
type TaskFailure struct {
	// Task is the failed task's index.
	Task int
	// Attempts is how many executions the task consumed.
	Attempts int
	// Err is the final attempt's error text.
	Err string
}

// FarmResult reports a farm run's outcome, including its partial-failure
// details.
type FarmResult struct {
	// Results holds one result per task, in task order. Entries for
	// quarantined tasks (see Failed) are nil.
	Results [][]byte
	// Failed lists quarantined tasks in task order: tasks whose kernel
	// failed or panicked on every one of their MaxAttempts executions.
	Failed []TaskFailure
	// Lost lists worker ranks that died, stopped acknowledging, or went
	// heartbeat-silent and were retired.
	Lost []int
	// Reassigned counts tasks that were requeued off a lost worker.
	Reassigned int
	// Retried counts task re-executions caused by per-task failures.
	Retried int
	// MasterRan counts tasks the master executed itself because no
	// worker remained alive.
	MasterRan int
	// Resumed counts tasks restored from the checkpoint store instead of
	// executed (results and previously quarantined failures both).
	Resumed int
}

// PartialFailure reports whether any worker was lost during the run.
func (fr *FarmResult) PartialFailure() bool { return len(fr.Lost) > 0 }

// FarmOptions tunes a supervised farm run. The zero value is valid: no
// cancellation, no checkpointing, default retry and heartbeat policy.
type FarmOptions struct {
	// Context cancels the run: Farm returns ctx.Err() promptly, leaving
	// partial results in FarmResult. A cancelled farm abandons its
	// workers mid-protocol, so the master should treat the session as
	// over (returning the error from the master function tears the
	// fabric down and unwinds every rank).
	Context context.Context
	// MaxAttempts is the number of times one task may execute before it
	// is quarantined in FarmResult.Failed (default 3).
	MaxAttempts int
	// Checkpoint, when non-nil, records every finished task (results and
	// quarantined failures) under Job, and resumes the job on startup:
	// tasks with a stored record are not re-executed, and their stored
	// bytes are returned — so a resumed run's results are bit-identical
	// to an uninterrupted one.
	Checkpoint checkpoint.Store
	// Job names this run in the checkpoint store. Required when
	// Checkpoint is set.
	Job string
	// HeartbeatTimeout retires a worker whose beats (and results) stop
	// arriving for this long, requeueing its in-flight task — the
	// failure detector for silent workers the fabric does not report as
	// crashed. 0 means the default 500ms; negative disables heartbeat
	// retirement (crash detection still applies).
	HeartbeatTimeout time.Duration
	// OnTaskTiming, when non-nil, receives each successful task's kernel
	// time, measured on the executing node's fabric clock and carried
	// back on the heartbeat tag. Delivery is best-effort (beats are
	// unacked) and at-most-once per task; the callback runs on the
	// master's collect loop. This is AutoPar's recalibration feed.
	OnTaskTiming func(task int, elapsed time.Duration)
}

const (
	defaultMaxAttempts      = 3
	defaultHeartbeatTimeout = 500 * time.Millisecond
)

// Farm runs the named farm kernel over tasks with default supervision and
// returns every result. Tasks are streamed to workers one at a time
// (self-balancing, like the paper's Eden two-level parMap but
// demand-driven); a lost worker's in-flight task is reassigned to a
// survivor. Farm succeeds as long as the master survives — with zero live
// workers it computes the remaining tasks locally — and FarmResult records
// how degraded the run was.
func (s *Session) Farm(name string, tasks [][]byte) (*FarmResult, error) {
	return s.FarmOpts(name, tasks, FarmOptions{})
}

// FarmOpts is Farm under explicit supervision options: cancellation,
// checkpoint/resume, and per-task failure policy. See FarmOptions.
func (s *Session) FarmOpts(name string, tasks [][]byte, opt FarmOptions) (*FarmResult, error) {
	fn, ok := lookupFarm(name)
	if !ok {
		return nil, fmt.Errorf("cluster: farm kernel %q not registered", name)
	}
	ctx := opt.Context
	if ctx == nil {
		// Inherit the session context (RunCtx), so cancelling the run
		// unwinds an optionless Farm too.
		ctx = s.node.Comm.Context()
	}
	maxAttempts := opt.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = defaultMaxAttempts
	}
	hbTimeout := opt.HeartbeatTimeout
	if hbTimeout == 0 {
		hbTimeout = defaultHeartbeatTimeout
	}
	timing := opt.OnTaskTiming != nil
	var timingSeen map[int]bool
	if timing {
		timingSeen = make(map[int]bool, len(tasks))
	}
	// reportTiming delivers one at-most-once timing sample to the observer.
	reportTiming := func(idx int, d time.Duration) {
		if !timing || idx < 0 || idx >= len(tasks) || timingSeen[idx] || d <= 0 {
			return
		}
		timingSeen[idx] = true
		opt.OnTaskTiming(idx, d)
	}
	if opt.Checkpoint != nil && opt.Job == "" {
		return nil, fmt.Errorf("cluster: farm %q: checkpointing requires a job name", name)
	}

	res := &FarmResult{Results: make([][]byte, len(tasks))}
	completed := make([]bool, len(tasks))
	attempts := make([]int, len(tasks))
	lastWorker := make([]int, len(tasks)) // rank whose failure requeued the task
	for i := range lastWorker {
		lastWorker[i] = -1
	}
	done := 0
	tr := s.node.Tracer

	// record appends one checkpoint record; a checkpoint that cannot be
	// written is job-fatal, because the resume guarantee would be silently
	// broken otherwise.
	record := func(rec checkpoint.Record) error {
		if opt.Checkpoint == nil {
			return nil
		}
		rec.Job = opt.Job
		if err := opt.Checkpoint.Append(rec); err != nil {
			return fmt.Errorf("cluster: farm %q checkpoint: %w", name, err)
		}
		tr.Instant(0, "farm.checkpoint", int64(len(rec.Payload)))
		return nil
	}

	// Resume: replay the job's records, marking their tasks finished.
	if opt.Checkpoint != nil {
		recs, err := opt.Checkpoint.Load(opt.Job)
		if err != nil {
			return nil, fmt.Errorf("cluster: farm %q: load checkpoint: %w", name, err)
		}
		for _, rec := range recs {
			if rec.Task < 0 || rec.Task >= len(tasks) || completed[rec.Task] {
				continue
			}
			switch rec.Kind {
			case checkpoint.KindResult:
				res.Results[rec.Task] = rec.Payload
			case checkpoint.KindFailed:
				res.Failed = append(res.Failed, TaskFailure{
					Task: rec.Task, Attempts: rec.Attempts, Err: string(rec.Payload),
				})
			default:
				continue
			}
			completed[rec.Task] = true
			done++
			res.Resumed++
		}
		if res.Resumed > 0 {
			tr.Instant(0, "farm.resume", int64(res.Resumed))
		}
	}

	// failTask applies the per-task failure policy: count the attempt,
	// requeue for another worker, quarantine once the budget is spent.
	var queue []int
	failTask := func(idx, worker int, msg string) error {
		attempts[idx]++
		tr.Instant(0, "farm.task-fail", int64(idx))
		if attempts[idx] >= maxAttempts {
			if err := record(checkpoint.Record{
				Task: idx, Kind: checkpoint.KindFailed,
				Attempts: attempts[idx], Payload: []byte(msg),
			}); err != nil {
				return err
			}
			res.Failed = append(res.Failed, TaskFailure{Task: idx, Attempts: attempts[idx], Err: msg})
			completed[idx] = true
			done++
			tr.Instant(0, "farm.quarantine", int64(idx))
			return nil
		}
		lastWorker[idx] = worker
		queue = append(queue, idx)
		res.Retried++
		return nil
	}
	// finishTask records and stores one successful result.
	finishTask := func(idx int, out []byte) error {
		if err := record(checkpoint.Record{Task: idx, Kind: checkpoint.KindResult, Payload: out}); err != nil {
			return err
		}
		res.Results[idx] = out
		completed[idx] = true
		done++
		return nil
	}

	// Dispatch the kernel to the workers.
	var lost []int
	if s.node.cfg.Reliable == nil {
		if _, err := mpi.BcastT(s.node.Comm, 0, stringCodec(), name); err != nil {
			return nil, fmt.Errorf("cluster: farm %q dispatch: %w", name, err)
		}
	} else {
		var err error
		lost, err = s.dispatch(name)
		if err != nil {
			return nil, fmt.Errorf("cluster: farm %q dispatch: %w", name, err)
		}
	}
	res.Lost = lost
	lostAtDispatch := make(map[int]bool, len(lost))
	for _, w := range lost {
		lostAtDispatch[w] = true
	}

	alive := make(map[int]bool)
	for w := 1; w < s.node.Nodes(); w++ {
		alive[w] = true
	}
	for _, w := range lost {
		delete(alive, w)
	}

	for i := range tasks {
		if !completed[i] {
			queue = append(queue, i)
		}
	}
	// Liveness bookkeeping runs on the fabric clock: with an injected
	// Config.Clock, heartbeat retirement is a function of fabric time
	// (provable under a simulated clock), not of wall-clock scheduling.
	clk := s.fabric.Clock()
	busy := map[int]int{} // worker rank → in-flight task index
	lastSeen := map[int]time.Time{}
	now := clk.Now()
	for w := range alive {
		lastSeen[w] = now
	}

	// loseWorker retires w and requeues its in-flight task, front of line.
	loseWorker := func(w int) {
		if idx, ok := busy[w]; ok {
			queue = append([]int{idx}, queue...)
			res.Reassigned++
			delete(busy, w)
		}
		delete(alive, w)
		res.Lost = append(res.Lost, w)
		tr.Instant(0, "farm.retire", int64(w))
	}
	// assign hands a queued task to w, preferring one w has not just
	// failed (so a flaky task's retry lands on another worker when one
	// exists). A lost worker is retired (its task stays queued); any
	// other send failure is job-fatal.
	assign := func(w int) error {
		pick := 0
		for i, idx := range queue {
			if lastWorker[idx] != w {
				pick = i
				break
			}
		}
		idx := queue[pick]
		if err := s.node.Comm.SendCtx(ctx, w, farmTaskTag, encodeTask(false, idx, tasks[idx], timing)); err != nil {
			if errors.Is(err, mpi.ErrRankLost) || errors.Is(err, transport.ErrCrashed) {
				loseWorker(w)
				return nil
			}
			return err
		}
		queue = append(queue[:pick], queue[pick+1:]...)
		busy[w] = idx
		lastSeen[w] = clk.Now()
		return nil
	}

	finish := func() (*FarmResult, error) {
		// Release the workers back to the kernel-dispatch loop: every
		// rank that received the dispatch — including retired-but-alive
		// ones — is still blocked in its task loop and needs the stop
		// frame. Sends to dead ranks fail tolerably.
		for w := 1; w < s.node.Nodes(); w++ {
			if lostAtDispatch[w] {
				continue
			}
			if err := s.node.Comm.Send(w, farmTaskTag, encodeTask(true, 0, nil, false)); err != nil &&
				!errors.Is(err, mpi.ErrRankLost) && !errors.Is(err, transport.ErrCrashed) {
				return res, fmt.Errorf("cluster: farm %q stop: %w", name, err)
			}
		}
		sort.Slice(res.Failed, func(i, j int) bool { return res.Failed[i].Task < res.Failed[j].Task })
		return res, nil
	}

	backoff := time.Duration(0)
	for done < len(tasks) {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("cluster: farm %q: %w", name, err)
		}

		// Keep every idle live worker fed.
		for len(queue) > 0 {
			idle := -1
			for w := range alive {
				if _, b := busy[w]; !b {
					idle = w
					break
				}
			}
			if idle < 0 {
				break
			}
			if err := assign(idle); err != nil {
				return res, fmt.Errorf("cluster: farm %q assign: %w", name, err)
			}
		}

		// No workers left: the master is its own last resort, under the
		// same per-task failure policy.
		if len(alive) == 0 {
			for len(queue) > 0 {
				if err := ctx.Err(); err != nil {
					return res, fmt.Errorf("cluster: farm %q: %w", name, err)
				}
				idx := queue[0]
				queue = queue[1:]
				taskStart := clk.Now()
				out, ferr := runFarmTask(s.node, fn, tasks[idx])
				if ferr == nil {
					reportTiming(idx, clk.Now().Sub(taskStart))
				}
				if ferr != nil {
					if err := failTask(idx, 0, ferr.Error()); err != nil {
						return res, err
					}
					continue
				}
				if err := finishTask(idx, out); err != nil {
					return res, err
				}
				res.MasterRan++
			}
			continue // done == len(tasks) now; the loop exits
		}

		// Drain heartbeats: each beat refreshes its sender's lastSeen.
		for {
			hm, ok, err := s.node.Comm.TryRecv(transport.AnySource, farmBeatTag)
			if err != nil {
				return res, fmt.Errorf("cluster: farm %q heartbeat drain: %w", name, err)
			}
			if !ok {
				break
			}
			lastSeen[hm.Src] = clk.Now()
			if idx, d, tok := decodeTiming(hm.Payload); tok {
				reportTiming(idx, d)
			}
		}

		m, ok, err := s.node.Comm.TryRecv(transport.AnySource, farmResultTag)
		if err != nil {
			return res, fmt.Errorf("cluster: farm %q collect: %w", name, err)
		}
		if ok {
			lastSeen[m.Src] = clk.Now()
			r := serial.NewReader(m.Payload)
			idx := r.Int()
			okTask := r.Bool()
			var taskErr string
			var out []byte
			if okTask {
				out = r.RawBytes()
			} else {
				taskErr = r.String()
			}
			if r.Err() != nil || idx < 0 || idx >= len(tasks) {
				return res, fmt.Errorf("cluster: farm %q: malformed result from node %d", name, m.Src)
			}
			if b, inFlight := busy[m.Src]; inFlight && b == idx {
				delete(busy, m.Src)
			}
			if completed[idx] {
				// A worker retired as silent may still deliver: its task
				// was reassigned and already finished elsewhere. Drop the
				// duplicate.
				backoff = 0
				continue
			}
			// A late result for a requeued task is still a first-class
			// outcome; pull the task back out of the queue.
			for i, q := range queue {
				if q == idx {
					queue = append(queue[:i], queue[i+1:]...)
					break
				}
			}
			if okTask {
				if err := finishTask(idx, out); err != nil {
					return res, err
				}
			} else {
				if err := failTask(idx, m.Src, fmt.Sprintf("node %d: %s", m.Src, taskErr)); err != nil {
					return res, err
				}
			}
			backoff = 0
			continue
		}

		// Nothing arrived: sweep for deaths the fabric already knows
		// about and for workers gone heartbeat-silent.
		swept := false
		var toLose []int
		for w := range alive {
			if s.fabric.Crashed(w) {
				toLose = append(toLose, w)
				continue
			}
			if hbTimeout > 0 && clk.Now().Sub(lastSeen[w]) > hbTimeout {
				tr.Instant(0, "farm.heartbeat-miss", int64(w))
				toLose = append(toLose, w)
			}
		}
		for _, w := range toLose {
			loseWorker(w)
			swept = true
		}
		if swept {
			backoff = 0
			continue
		}
		if backoff == 0 {
			backoff = collectBackoffMin
		} else if backoff < collectBackoffMax {
			backoff *= 2
			if backoff > collectBackoffMax {
				backoff = collectBackoffMax
			}
		}
		sleepCtx(ctx, backoff)
	}

	return finish()
}

// sleepCtx sleeps for d or until ctx is cancelled, whichever is first.
// The sleep is wall-clock on purpose: it paces the collect loop's polling
// against the real scheduler; no protocol deadline is measured here.
func sleepCtx(ctx context.Context, d time.Duration) {
	if ctx.Done() == nil {
		time.Sleep(d) //lint:allow fabrictime poll backoff paces the real scheduler; no fabric deadline is measured
		return
	}
	t := time.NewTimer(d) //lint:allow fabrictime poll backoff paces the real scheduler; no fabric deadline is measured
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// FarmT is the typed farm wrapper: codecs on both ends, same supervision
// semantics. Quarantined tasks decode to R's zero value; consult
// FarmResult.Failed before trusting those entries.
func FarmT[T, R any](s *Session, name string, tc serial.Codec[T], rc serial.Codec[R], tasks []T) ([]R, *FarmResult, error) {
	raw := make([][]byte, len(tasks))
	for i, t := range tasks {
		raw[i] = serial.Marshal(tc, t)
	}
	fr, err := s.Farm(name, raw)
	if err != nil {
		return nil, fr, err
	}
	failed := make(map[int]bool, len(fr.Failed))
	for _, f := range fr.Failed {
		failed[f.Task] = true
	}
	out := make([]R, len(fr.Results))
	for i, b := range fr.Results {
		if failed[i] {
			continue
		}
		v, err := serial.Unmarshal(rc, b)
		if err != nil {
			return nil, fr, fmt.Errorf("cluster: farm %q decode task %d: %w", name, i, err)
		}
		out[i] = v
	}
	return out, fr, nil
}
