// Task farm: the fault-tolerant counterpart of the collective skeletons.
// Collective kernels (scatter → compute → reduce) need every rank alive
// for the whole call; the farm instead streams independent tasks to
// workers one at a time, so when a worker is lost mid-run (ack timeouts or
// a fabric-reported crash) the master requeues that worker's in-flight
// task, keeps going with the survivors, and — if every worker dies — runs
// the remainder itself. The session degrades gracefully and reports the
// partial failure in FarmResult instead of deadlocking, which is exactly
// the behavior the paper's lossless-MPI runtime cannot offer (§3.4).
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"triolet/internal/mpi"
	"triolet/internal/serial"
	"triolet/internal/transport"
)

// Reserved user tags for the farm protocol (just below the control tag).
const (
	farmTaskTag   = mpi.MaxUserTag - 1
	farmResultTag = mpi.MaxUserTag - 2
)

// FarmFn is a farm kernel body: one task in, one result out. It runs on
// whichever node the task lands on (a worker, or the master as fallback).
type FarmFn func(n *Node, task []byte) ([]byte, error)

var (
	farmMu       sync.RWMutex
	farmRegistry = map[string]FarmFn{}
)

// RegisterFarm installs a named farm kernel. Like RegisterWorker it is
// called once at init time and panics on duplicates. The same body is
// used worker-side (task loop) and master-side (fallback execution).
func RegisterFarm(name string, fn FarmFn) {
	farmMu.Lock()
	if _, dup := farmRegistry[name]; dup {
		farmMu.Unlock()
		panic(fmt.Sprintf("cluster: duplicate farm kernel %q", name))
	}
	farmRegistry[name] = fn
	farmMu.Unlock()
	RegisterWorker(name, func(n *Node) error { return farmWorker(n, fn) })
}

func lookupFarm(name string) (FarmFn, bool) {
	farmMu.RLock()
	defer farmMu.RUnlock()
	fn, ok := farmRegistry[name]
	return fn, ok
}

// resetFarmRegistry clears the farm kernel table (tests only).
func resetFarmRegistry() {
	farmMu.Lock()
	defer farmMu.Unlock()
	farmRegistry = map[string]FarmFn{}
}

// encodeTask frames one task assignment (stop=true carries no task).
func encodeTask(stop bool, index int, payload []byte) []byte {
	w := serial.NewWriter(len(payload) + 16)
	w.Bool(stop)
	w.Int(index)
	w.RawBytes(payload)
	return w.Bytes()
}

// farmWorker is the node-side task loop: receive, compute, reply, repeat
// until the stop frame.
func farmWorker(n *Node, fn FarmFn) error {
	for {
		m, err := n.Comm.Recv(0, farmTaskTag)
		if err != nil {
			return err
		}
		r := serial.NewReader(m.Payload)
		stop := r.Bool()
		idx := r.Int()
		task := r.RawBytes()
		if r.Err() != nil {
			return fmt.Errorf("cluster: node %d: malformed farm task: %w", n.Rank(), r.Err())
		}
		if stop {
			return nil
		}
		out, ferr := fn(n, task)
		w := serial.NewWriter(len(out) + 16)
		w.Int(idx)
		w.Bool(ferr == nil)
		if ferr != nil {
			w.String(ferr.Error())
		} else {
			w.RawBytes(out)
		}
		if err := n.Comm.Send(0, farmResultTag, w.Bytes()); err != nil {
			return err
		}
	}
}

// FarmResult reports a farm run's outcome, including its partial-failure
// details.
type FarmResult struct {
	// Results holds one result per task, in task order.
	Results [][]byte
	// Lost lists worker ranks that died or stopped acknowledging.
	Lost []int
	// Reassigned counts tasks that were requeued off a lost worker.
	Reassigned int
	// MasterRan counts tasks the master executed itself because no
	// worker remained alive.
	MasterRan int
}

// PartialFailure reports whether any worker was lost during the run.
func (fr *FarmResult) PartialFailure() bool { return len(fr.Lost) > 0 }

// Farm runs the named farm kernel over tasks and returns every result.
// Tasks are streamed to workers one at a time (self-balancing, like the
// paper's Eden two-level parMap but demand-driven); a lost worker's
// in-flight task is reassigned to a survivor. Farm succeeds as long as the
// master survives — with zero live workers it computes the remaining tasks
// locally — and FarmResult records how degraded the run was.
func (s *Session) Farm(name string, tasks [][]byte) (*FarmResult, error) {
	fn, ok := lookupFarm(name)
	if !ok {
		return nil, fmt.Errorf("cluster: farm kernel %q not registered", name)
	}
	res := &FarmResult{Results: make([][]byte, len(tasks))}
	var lost []int
	if s.node.cfg.Reliable == nil {
		if _, err := mpi.BcastT(s.node.Comm, 0, stringCodec(), name); err != nil {
			return nil, fmt.Errorf("cluster: farm %q dispatch: %w", name, err)
		}
	} else {
		var err error
		lost, err = s.dispatch(name)
		if err != nil {
			return nil, fmt.Errorf("cluster: farm %q dispatch: %w", name, err)
		}
	}
	res.Lost = lost

	alive := make(map[int]bool)
	for w := 1; w < s.node.Nodes(); w++ {
		alive[w] = true
	}
	for _, w := range lost {
		delete(alive, w)
	}

	queue := make([]int, len(tasks))
	for i := range queue {
		queue[i] = i
	}
	busy := map[int]int{} // worker rank → in-flight task index
	done := 0

	// loseWorker retires w and requeues its in-flight task, front of line.
	loseWorker := func(w int) {
		if idx, ok := busy[w]; ok {
			queue = append([]int{idx}, queue...)
			res.Reassigned++
			delete(busy, w)
		}
		delete(alive, w)
		res.Lost = append(res.Lost, w)
	}
	// assign hands the next queued task to w. A lost worker is retired
	// (its task stays queued); any other send failure is job-fatal.
	assign := func(w int) error {
		idx := queue[0]
		if err := s.node.Comm.Send(w, farmTaskTag, encodeTask(false, idx, tasks[idx])); err != nil {
			if errors.Is(err, mpi.ErrRankLost) || errors.Is(err, transport.ErrCrashed) {
				loseWorker(w)
				return nil
			}
			return err
		}
		queue = queue[1:]
		busy[w] = idx
		return nil
	}

	prime := make([]int, 0, len(alive))
	for w := range alive {
		prime = append(prime, w)
	}
	for _, w := range prime {
		if len(queue) == 0 {
			break
		}
		if err := assign(w); err != nil {
			return res, fmt.Errorf("cluster: farm %q assign: %w", name, err)
		}
	}

	for done < len(tasks) {
		// No workers left: the master is its own last resort.
		if len(busy) == 0 {
			for len(queue) > 0 {
				idx := queue[0]
				queue = queue[1:]
				out, ferr := fn(s.node, tasks[idx])
				if ferr != nil {
					return res, fmt.Errorf("cluster: farm %q task %d (master fallback): %w", name, idx, ferr)
				}
				res.Results[idx] = out
				res.MasterRan++
				done++
			}
			break
		}
		m, ok, err := s.node.Comm.TryRecv(transport.AnySource, farmResultTag)
		if err != nil {
			return res, fmt.Errorf("cluster: farm %q collect: %w", name, err)
		}
		if ok {
			r := serial.NewReader(m.Payload)
			idx := r.Int()
			okTask := r.Bool()
			if !okTask {
				msg := r.String()
				return res, fmt.Errorf("cluster: farm %q task %d on node %d: %s", name, idx, m.Src, msg)
			}
			out := r.RawBytes()
			if r.Err() != nil || idx < 0 || idx >= len(tasks) {
				return res, fmt.Errorf("cluster: farm %q: malformed result from node %d", name, m.Src)
			}
			res.Results[idx] = out
			done++
			delete(busy, m.Src)
			if len(queue) > 0 {
				if err := assign(m.Src); err != nil {
					return res, fmt.Errorf("cluster: farm %q assign: %w", name, err)
				}
			}
			continue
		}
		// Nothing arrived: sweep the in-flight workers for deaths the
		// fabric already knows about.
		crashed := false
		for w := range busy {
			if s.fabric.Crashed(w) {
				loseWorker(w)
				crashed = true
			}
		}
		if !crashed {
			time.Sleep(50 * time.Microsecond)
		}
	}

	// Release the survivors back to the kernel-dispatch loop.
	for w := range alive {
		if err := s.node.Comm.Send(w, farmTaskTag, encodeTask(true, 0, nil)); err != nil &&
			!errors.Is(err, mpi.ErrRankLost) && !errors.Is(err, transport.ErrCrashed) {
			return res, fmt.Errorf("cluster: farm %q stop: %w", name, err)
		}
	}
	return res, nil
}

// FarmT is the typed farm wrapper: codecs on both ends, same reassignment
// semantics.
func FarmT[T, R any](s *Session, name string, tc serial.Codec[T], rc serial.Codec[R], tasks []T) ([]R, *FarmResult, error) {
	raw := make([][]byte, len(tasks))
	for i, t := range tasks {
		raw[i] = serial.Marshal(tc, t)
	}
	fr, err := s.Farm(name, raw)
	if err != nil {
		return nil, fr, err
	}
	out := make([]R, len(fr.Results))
	for i, b := range fr.Results {
		v, err := serial.Unmarshal(rc, b)
		if err != nil {
			return nil, fr, fmt.Errorf("cluster: farm %q decode task %d: %w", name, i, err)
		}
		out[i] = v
	}
	return out, fr, nil
}
