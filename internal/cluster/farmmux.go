// Multiplexed farm engine: the transport mechanism under the multi-tenant
// job service (internal/jobs). A single farm run owns every worker for the
// duration of one task list; the Mux instead keeps all workers parked in
// one long-lived task loop whose frames name their kernel per task, so the
// master can interleave tasks from many concurrent jobs onto the shared
// pool. The Mux is pure mechanism — dispatch, result collection, liveness —
// and makes no scheduling decisions: which job's task goes out next is the
// caller's policy (the jobs package's weighted deficit round-robin).
//
// Fault handling mirrors the single farm: a worker that crashes, stops
// acknowledging, or goes heartbeat-silent is retired, and its in-flight
// assignment comes back to the caller as a MuxWorkerLost event for
// requeueing. Late results from a retired-but-alive worker are delivered
// as ordinary MuxTaskDone events — deduplication is the caller's job,
// exactly as it is for the single farm's completed[] check.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"triolet/internal/mpi"
	"triolet/internal/serial"
	"triolet/internal/trace"
	"triolet/internal/transport"
)

// Reserved user tags for the mux protocol, continuing the farm block
// (ctlTag, farmTaskTag, farmResultTag, farmBeatTag occupy MaxUserTag..-3).
const (
	muxTaskTag   = mpi.MaxUserTag - 4
	muxResultTag = mpi.MaxUserTag - 5
	muxBeatTag   = mpi.MaxUserTag - 6
)

// muxKernelName is the reserved worker-loop kernel the Mux dispatches; like
// shutdownName it is unregistrable by applications (NUL prefix).
const muxKernelName = "\x00jobs.mux"

// ensureMuxWorker installs the mux worker loop in the kernel registry. It
// is idempotent (unlike RegisterWorker) because tests reset the registry
// between sessions and every Mux open must be able to restore it.
func ensureMuxWorker() {
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[muxKernelName]; !ok {
		registry[muxKernelName] = muxWorkerMain
	}
}

// MuxAssignment is one task routed through the Mux: a job-qualified,
// kernel-named unit of work.
type MuxAssignment struct {
	// Job is the owning job's name; it rides the wire so results route
	// back to the right job without any per-job connection state.
	Job string
	// Kernel names the registered farm kernel (RegisterFarm) to run.
	Kernel string
	// Task is the task's index within its job.
	Task int
	// Payload is the task input.
	Payload []byte
}

// MuxEventKind distinguishes Mux events.
type MuxEventKind uint8

const (
	// MuxTaskDone reports one finished task execution (success or error).
	MuxTaskDone MuxEventKind = 1
	// MuxWorkerLost reports a retired worker; Requeued carries its
	// in-flight assignment (if it had one) for the caller to reschedule.
	MuxWorkerLost MuxEventKind = 2
)

// MuxEvent is one observation from Poll.
type MuxEvent struct {
	Kind   MuxEventKind
	Worker int
	// Task-done fields.
	Job    string
	Task   int
	OK     bool
	Result []byte
	Err    string
	// Elapsed is the kernel's compute time on the executing node, measured
	// on the fabric clock — the raw material for per-job task-seconds.
	Elapsed time.Duration
	// Requeued is the lost worker's in-flight assignment (MuxWorkerLost).
	Requeued []MuxAssignment
}

// MuxOptions tunes a Mux.
type MuxOptions struct {
	// HeartbeatTimeout retires a worker whose beats and results stop for
	// this long (0 = the farm default 500ms; negative disables).
	HeartbeatTimeout time.Duration
}

// Mux is the master's handle on the multiplexed worker pool. It is owned
// by a single goroutine (the job service's serve loop), like a Comm.
type Mux struct {
	s         *Session
	clk       transport.Clock
	hbTimeout time.Duration
	alive     map[int]bool
	busy      map[int]MuxAssignment
	lastSeen  map[int]time.Time
	events    []MuxEvent
	closed    bool
	// lostAtDispatch are ranks that never received the worker-loop
	// dispatch; they must not be sent stop frames at Close.
	lostAtDispatch map[int]bool
}

// OpenMux dispatches the multiplexed worker loop to every worker node and
// returns the master's handle. Workers already lost at dispatch are
// reported through the first Poll calls as MuxWorkerLost events.
func (s *Session) OpenMux(opt MuxOptions) (*Mux, error) {
	ensureMuxWorker()
	hb := opt.HeartbeatTimeout
	if hb == 0 {
		hb = defaultHeartbeatTimeout
	}
	m := &Mux{
		s:              s,
		clk:            s.fabric.Clock(),
		hbTimeout:      hb,
		alive:          make(map[int]bool),
		busy:           make(map[int]MuxAssignment),
		lastSeen:       make(map[int]time.Time),
		lostAtDispatch: make(map[int]bool),
	}
	var lost []int
	if s.node.cfg.Reliable == nil {
		if _, err := mpi.BcastT(s.node.Comm, 0, stringCodec(), muxKernelName); err != nil {
			return nil, fmt.Errorf("cluster: mux dispatch: %w", err)
		}
	} else {
		var err error
		lost, err = s.dispatch(muxKernelName)
		if err != nil {
			return nil, fmt.Errorf("cluster: mux dispatch: %w", err)
		}
	}
	now := m.clk.Now()
	for w := 1; w < s.node.Nodes(); w++ {
		m.alive[w] = true
		m.lastSeen[w] = now
	}
	for _, w := range lost {
		delete(m.alive, w)
		m.lostAtDispatch[w] = true
		m.events = append(m.events, MuxEvent{Kind: MuxWorkerLost, Worker: w})
	}
	return m, nil
}

// Workers reports the number of live (non-retired) workers.
func (m *Mux) Workers() int { return len(m.alive) }

// Idle returns the live workers with no assignment in flight, in ascending
// rank order (deterministic for a given state, which keeps campaign runs
// replayable).
func (m *Mux) Idle() []int {
	var idle []int
	for w := 1; w < m.s.node.Nodes(); w++ {
		if m.alive[w] {
			if _, b := m.busy[w]; !b {
				idle = append(idle, w)
			}
		}
	}
	return idle
}

// Busy reports w's in-flight assignment, if any.
func (m *Mux) Busy(w int) (MuxAssignment, bool) {
	a, ok := m.busy[w]
	return a, ok
}

// Assign sends one task to live idle worker w. A send that fails because w
// is lost retires it (queueing a MuxWorkerLost event carrying the
// assignment back); any other failure is fatal to the session.
func (m *Mux) Assign(ctx context.Context, w int, a MuxAssignment) error {
	if !m.alive[w] {
		return fmt.Errorf("cluster: mux assign to retired worker %d", w)
	}
	if _, b := m.busy[w]; b {
		return fmt.Errorf("cluster: mux assign to busy worker %d", w)
	}
	frame := encodeMuxTask(false, a)
	if err := m.s.node.Comm.SendCtx(ctx, w, muxTaskTag, frame); err != nil {
		if errors.Is(err, mpi.ErrRankLost) || errors.Is(err, transport.ErrCrashed) {
			m.busy[w] = a // retire() moves it into the event's Requeued
			m.retire(w)
			return nil
		}
		return err
	}
	m.busy[w] = a
	m.lastSeen[w] = m.clk.Now()
	return nil
}

// retire removes w from the pool and queues its MuxWorkerLost event.
func (m *Mux) retire(w int) {
	ev := MuxEvent{Kind: MuxWorkerLost, Worker: w}
	if a, ok := m.busy[w]; ok {
		ev.Requeued = append(ev.Requeued, a)
		delete(m.busy, w)
	}
	delete(m.alive, w)
	m.events = append(m.events, ev)
	m.tracer().Instant(0, "mux.retire", int64(w))
}

func (m *Mux) tracer() *trace.Tracer { return m.s.node.Tracer }

// Poll drains protocol traffic without blocking and returns the next
// event, if any: queued worker losses first, then a freshly arrived
// result, then health-sweep retirements. ok is false when nothing
// happened — the caller decides how to back off.
func (m *Mux) Poll() (MuxEvent, bool, error) {
	if ev, ok := m.popEvent(); ok {
		return ev, true, nil
	}
	// Beats refresh liveness.
	for {
		hm, ok, err := m.s.node.Comm.TryRecv(transport.AnySource, muxBeatTag)
		if err != nil {
			return MuxEvent{}, false, fmt.Errorf("cluster: mux beat drain: %w", err)
		}
		if !ok {
			break
		}
		m.lastSeen[hm.Src] = m.clk.Now()
	}
	// One result per Poll keeps the caller's accounting loop simple.
	rm, ok, err := m.s.node.Comm.TryRecv(transport.AnySource, muxResultTag)
	if err != nil {
		return MuxEvent{}, false, fmt.Errorf("cluster: mux collect: %w", err)
	}
	if ok {
		m.lastSeen[rm.Src] = m.clk.Now()
		ev, derr := decodeMuxResult(rm.Src, rm.Payload)
		if derr != nil {
			return MuxEvent{}, false, fmt.Errorf("cluster: mux: %w", derr)
		}
		if a, inFlight := m.busy[rm.Src]; inFlight && a.Job == ev.Job && a.Task == ev.Task {
			delete(m.busy, rm.Src)
		}
		return ev, true, nil
	}
	// Nothing arrived: sweep for fabric-reported crashes and silence.
	now := m.clk.Now()
	for w := range m.alive {
		if m.s.fabric.Crashed(w) {
			m.retire(w)
			continue
		}
		if m.hbTimeout > 0 && now.Sub(m.lastSeen[w]) > m.hbTimeout {
			m.tracer().Instant(0, "mux.heartbeat-miss", int64(w))
			m.retire(w)
		}
	}
	if ev, ok := m.popEvent(); ok {
		return ev, true, nil
	}
	return MuxEvent{}, false, nil
}

func (m *Mux) popEvent() (MuxEvent, bool) {
	if len(m.events) == 0 {
		return MuxEvent{}, false
	}
	ev := m.events[0]
	m.events = m.events[1:]
	return ev, true
}

// RunLocal executes one assignment on the master itself — the no-workers
// fallback — and returns its MuxTaskDone event without touching the wire.
func (m *Mux) RunLocal(a MuxAssignment) MuxEvent {
	fn, ok := lookupFarm(a.Kernel)
	ev := MuxEvent{Kind: MuxTaskDone, Worker: 0, Job: a.Job, Task: a.Task}
	if !ok {
		ev.Err = fmt.Sprintf("cluster: farm kernel %q not registered", a.Kernel)
		return ev
	}
	start := m.clk.Now()
	out, err := runFarmTask(m.s.node, fn, a.Payload)
	ev.Elapsed = m.clk.Now().Sub(start)
	if err != nil {
		ev.Err = err.Error()
		return ev
	}
	ev.OK = true
	ev.Result = out
	return ev
}

// Close releases every worker that received the dispatch back to the
// kernel-dispatch loop (retired-but-alive workers included: they are still
// blocked in the task loop and need the stop frame). Sends to dead ranks
// fail tolerably.
func (m *Mux) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	for w := 1; w < m.s.node.Nodes(); w++ {
		if m.lostAtDispatch[w] {
			continue
		}
		if err := m.s.node.Comm.Send(w, muxTaskTag, encodeMuxTask(true, MuxAssignment{})); err != nil &&
			!errors.Is(err, mpi.ErrRankLost) && !errors.Is(err, transport.ErrCrashed) {
			return fmt.Errorf("cluster: mux stop: %w", err)
		}
	}
	return nil
}

// encodeMuxTask frames one assignment (stop=true carries no task).
func encodeMuxTask(stop bool, a MuxAssignment) []byte {
	w := serial.NewWriter(len(a.Payload) + len(a.Job) + len(a.Kernel) + 32)
	w.Bool(stop)
	w.String(a.Job)
	w.String(a.Kernel)
	w.Int(a.Task)
	w.RawBytes(a.Payload)
	return w.Bytes()
}

// encodeMuxResult frames one execution outcome, carrying the kernel's
// fabric-clock compute time for per-job accounting.
func encodeMuxResult(a MuxAssignment, ok bool, out []byte, errMsg string, elapsed time.Duration) []byte {
	w := serial.NewWriter(len(out) + len(errMsg) + len(a.Job) + 40)
	w.String(a.Job)
	w.Int(a.Task)
	w.U64(uint64(elapsed))
	w.Bool(ok)
	if ok {
		w.RawBytes(out)
	} else {
		w.String(errMsg)
	}
	return w.Bytes()
}

// decodeMuxResult parses a result frame into its MuxTaskDone event.
func decodeMuxResult(src int, payload []byte) (MuxEvent, error) {
	r := serial.NewReader(payload)
	ev := MuxEvent{Kind: MuxTaskDone, Worker: src}
	ev.Job = r.String()
	ev.Task = r.Int()
	ev.Elapsed = time.Duration(r.U64())
	ev.OK = r.Bool()
	if ev.OK {
		ev.Result = r.RawBytes()
	} else {
		ev.Err = r.String()
	}
	if r.Err() != nil || r.Remaining() != 0 || ev.Task < 0 {
		return MuxEvent{}, fmt.Errorf("malformed mux result from node %d", src)
	}
	return ev, nil
}

// muxWorkerMain is the node-side loop: receive a kernel-named task,
// execute, reply with timing, repeat until the stop frame. Beats ride the
// unacked coalesced path like farm heartbeats.
func muxWorkerMain(n *Node) error {
	interval := n.cfg.FarmHeartbeat
	if interval <= 0 {
		interval = defaultFarmHeartbeat
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval) //lint:allow fabrictime beat pacing is real-time by design; liveness deadlines are measured on the fabric clock master-side
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if err := n.Comm.SendBeat(0, muxBeatTag, nil); err != nil {
					return // master unreachable: the task loop will find out
				}
			}
		}
	}()
	defer func() {
		close(stop)
		wg.Wait()
	}()
	clk := clockOf(n)
	for {
		m, err := n.Comm.Recv(0, muxTaskTag)
		if err != nil {
			if errors.Is(err, mpi.ErrRankLost) {
				// Retired (or orphaned) worker: exit quietly, as in
				// farmWorker — the master has already written us off.
				return nil
			}
			return err
		}
		r := serial.NewReader(m.Payload)
		stopFrame := r.Bool()
		a := MuxAssignment{Job: r.String(), Kernel: r.String(), Task: r.Int(), Payload: r.RawBytes()}
		if r.Err() != nil {
			return fmt.Errorf("cluster: node %d: malformed mux task: %w", n.Rank(), r.Err())
		}
		if stopFrame {
			return nil
		}
		fn, ok := lookupFarm(a.Kernel)
		var out []byte
		var ferr error
		var elapsed time.Duration
		if !ok {
			ferr = fmt.Errorf("cluster: node %d: unknown farm kernel %q", n.Rank(), a.Kernel)
		} else {
			start := clk.Now()
			out, ferr = runFarmTask(n, fn, a.Payload)
			elapsed = clk.Now().Sub(start)
		}
		msg := ""
		if ferr != nil {
			msg = ferr.Error()
		}
		if err := n.Comm.Send(0, muxResultTag, encodeMuxResult(a, ferr == nil, out, msg, elapsed)); err != nil {
			if errors.Is(err, mpi.ErrRankLost) {
				return nil // retired mid-reply: quiet exit
			}
			return err
		}
	}
}

// clockOf returns the node's time source: the injected cluster clock when
// one is configured, the system clock otherwise — the same source the
// fabric hands the master, under the SPMD assumption.
func clockOf(n *Node) transport.Clock {
	if n.cfg.Clock != nil {
		return n.cfg.Clock
	}
	return transport.SystemClock()
}
