package cluster

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"triolet/internal/trace"
)

// fakeClock is an injectable transport.Clock: a fixed base plus an
// atomically advanced offset, so the test controls fabric time directly.
type fakeClock struct {
	base time.Time
	off  atomic.Int64 // nanoseconds past base
}

func newFakeClock() *fakeClock {
	return &fakeClock{base: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time { return c.base.Add(time.Duration(c.off.Load())) }

func (c *fakeClock) advance(d time.Duration) { c.off.Add(int64(d)) }

// Heartbeat retirement is a function of fabric time, not wall-clock
// scheduling: with an injected simulated clock and a HeartbeatTimeout of
// minutes, a single fabric-clock jump past the timeout retires the silent
// worker in well under a second of real time. Before farm.go read liveness
// deadlines off the fabric clock this test would hang for the full
// wall-clock timeout.
func TestFarmHeartbeatRetirementFollowsFabricClock(t *testing.T) {
	resetRegistry()
	resetFarmRegistry()
	RegisterFarm("sup.fabric-clock", func(n *Node, task []byte) ([]byte, error) {
		if !n.IsRoot() {
			// Silent far beyond the (real-time) jump window, far below
			// the fabric-time heartbeat timeout.
			time.Sleep(400 * time.Millisecond)
		}
		return task, nil
	})

	const hbTimeout = 5 * time.Minute
	clk := newFakeClock()
	tr := trace.New()

	// One fabric-clock jump past the timeout, after dispatch has settled
	// in real time. Nothing else moves the clock, so retirement can only
	// come from fabric time.
	jump := time.AfterFunc(100*time.Millisecond, func() { clk.advance(hbTimeout + time.Minute) })
	defer jump.Stop()

	start := time.Now()
	_, err := runGuarded(t, Config{
		Nodes: 2, CoresPerNode: 1,
		Tracer:        tr,
		Clock:         clk,
		FarmHeartbeat: time.Hour, // beats never arrive: the worker reads as silent
	}, func(s *Session) error {
		fr, err := s.FarmOpts("sup.fabric-clock", [][]byte{{0}, {1}}, FarmOptions{
			HeartbeatTimeout: hbTimeout,
		})
		if err != nil {
			return err
		}
		if len(fr.Lost) != 1 || fr.Lost[0] != 1 {
			return fmt.Errorf("Lost = %v, want [1]", fr.Lost)
		}
		if fr.MasterRan != 2 {
			return fmt.Errorf("MasterRan = %d, want 2", fr.MasterRan)
		}
		if fr.Reassigned != 1 {
			return fmt.Errorf("Reassigned = %d, want 1", fr.Reassigned)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed >= hbTimeout {
		t.Fatalf("farm took %v of real time; retirement tracked the wall clock, not the fabric clock", elapsed)
	}
	if tr.Count("farm.heartbeat-miss") < 1 {
		t.Fatal("no farm.heartbeat-miss trace event")
	}
	if tr.Count("farm.retire") < 1 {
		t.Fatal("no farm.retire trace event")
	}
}
