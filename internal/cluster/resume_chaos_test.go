package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"triolet/internal/checkpoint"
)

// Checkpoint/resume under chaos: a farm job's master is killed mid-run on a
// lossy fabric, a fresh session restarts against the same WAL file, and the
// resumed job must (a) re-execute only the tasks the first life never
// finished and (b) produce results bit-identical to an undisturbed run.
// This is the acceptance scenario for the job-supervisor work.

// resumeExecs counts kernel executions across sessions in this process; the
// two lives of the job share it, so tests can assert exactly how much work
// the resume re-did.
var resumeExecs atomic.Int64

func registerResumeWork() {
	RegisterFarm("resume.work", func(n *Node, task []byte) ([]byte, error) {
		resumeExecs.Add(1)
		time.Sleep(2 * time.Millisecond) // give the killer a window mid-job
		// Deterministic transform: any scheduling or retry nondeterminism
		// in the runtime must not show through in the bytes.
		out := make([]byte, len(task)+8)
		var sum uint64
		for i, b := range task {
			out[i] = b*3 + 1
			sum += uint64(b)
		}
		binary.LittleEndian.PutUint64(out[len(task):], sum*sum)
		return out, nil
	})
}

func resumeTasks(n int) [][]byte {
	tasks := make([][]byte, n)
	for i := range tasks {
		tasks[i] = []byte{byte(i), byte(i * 7), byte(i * 31)}
	}
	return tasks
}

func TestFarmResumeFromWALAfterMasterKilledUnderChaos(t *testing.T) {
	resetRegistry()
	resetFarmRegistry()
	registerResumeWork()
	const nTasks = 40
	tasks := resumeTasks(nTasks)

	// Golden run: no faults, no checkpoint — the reference bytes.
	var golden [][]byte
	if _, err := runGuarded(t, Config{Nodes: 4, CoresPerNode: 1}, func(s *Session) error {
		fr, err := s.Farm("resume.work", tasks)
		if err != nil {
			return err
		}
		golden = fr.Results
		return nil
	}); err != nil {
		t.Fatalf("golden run: %v", err)
	}

	walPath := filepath.Join(t.TempDir(), "job.wal")
	wal, err := checkpoint.OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}

	// First life: lossy fabric, and the master is killed (context cancel —
	// the in-process stand-in for kill -9) once at least 10 tasks have
	// reached the WAL.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		for {
			if wal.Records() >= 10 {
				cancel()
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	resumeExecs.Store(0)
	_, err = RunCtx(ctx, Config{
		Nodes: 4, CoresPerNode: 1,
		Fault:    chaosProfile(41),
		Reliable: fastRetry(),
	}, func(s *Session) error {
		_, err := s.FarmOpts("resume.work", tasks, FarmOptions{Checkpoint: wal, Job: "resume-job"})
		return err
	})
	<-killed
	if err == nil {
		t.Fatal("first life finished before the kill; lower the kill threshold")
	}
	firstLifeExecs := resumeExecs.Load()
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: a brand-new session reopens the WAL from disk (re-scan,
	// torn-tail handling) and finishes the job, still under chaos.
	wal2, err := checkpoint.OpenWAL(walPath)
	if err != nil {
		t.Fatalf("reopen WAL: %v", err)
	}
	defer wal2.Close()
	checkpointed := wal2.Records()
	if checkpointed < 10 {
		t.Fatalf("WAL lost records across the crash: %d on disk, want >= 10", checkpointed)
	}
	resumeExecs.Store(0)
	var resumed *FarmResult
	if _, err := runGuarded(t, Config{
		Nodes: 4, CoresPerNode: 1,
		Fault:    chaosProfile(43),
		Reliable: fastRetry(),
	}, func(s *Session) error {
		fr, err := s.FarmOpts("resume.work", tasks, FarmOptions{Checkpoint: wal2, Job: "resume-job"})
		resumed = fr
		return err
	}); err != nil {
		t.Fatalf("second life: %v", err)
	}

	if resumed.Resumed != checkpointed {
		t.Fatalf("Resumed = %d, want every checkpointed task (%d)", resumed.Resumed, checkpointed)
	}
	if got, want := resumeExecs.Load(), int64(nTasks-checkpointed); got != want {
		t.Fatalf("second life executed %d tasks, want exactly the %d unfinished ones", got, want)
	}
	if len(resumed.Failed) != 0 {
		t.Fatalf("chaos quarantined tasks: %+v", resumed.Failed)
	}
	for i := range golden {
		if !bytes.Equal(resumed.Results[i], golden[i]) {
			t.Fatalf("task %d: resumed result %x != golden %x", i, resumed.Results[i], golden[i])
		}
	}
	t.Logf("first life: %d executed, %d checkpointed; second life re-executed %d",
		firstLifeExecs, checkpointed, nTasks-checkpointed)
}
