package cluster

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"triolet/internal/mpi"
	"triolet/internal/serial"
	"triolet/internal/transport"
)

// Chaos tests: sessions running on a deliberately faulty fabric. Every test
// is deadline-guarded — the failure mode these exist to catch is a hang.

// chaosProfile is the standard lossy-fabric profile: a few percent of every
// fault kind, deterministic seed.
func chaosProfile(seed int64) *transport.FaultConfig {
	return &transport.FaultConfig{
		Seed: seed,
		Default: transport.FaultProbs{
			Drop:      0.05,
			Duplicate: 0.05,
			Corrupt:   0.05,
		},
	}
}

// fastRetry keeps the ack/retry ladder responsive while leaving a deep
// retry budget: under -race on a small machine a scheduling round can eat
// several timeouts, and a starved rank must not read as a lost rank.
func fastRetry() *mpi.ReliableConfig {
	return &mpi.ReliableConfig{
		AckTimeout:    500 * time.Microsecond,
		Retries:       100,
		MaxAckTimeout: 50 * time.Millisecond,
	}
}

// runGuarded executes Run with a deadline; a session that hangs fails the
// test instead of wedging the suite.
func runGuarded(t *testing.T, cfg Config, master func(*Session) error) (transport.Stats, error) {
	t.Helper()
	type outcome struct {
		stats transport.Stats
		err   error
	}
	ch := make(chan outcome, 1)
	go func() {
		stats, err := Run(cfg, master)
		ch <- outcome{stats, err}
	}()
	select {
	case o := <-ch:
		return o.stats, o.err
	case <-time.After(30 * time.Second):
		t.Fatal("session deadlocked under fault injection")
		return transport.Stats{}, nil
	}
}

// sumKernel computes sum(rank+1) over all nodes with a collective reduce.
func registerSumKernel(name string) {
	RegisterWorker(name, func(n *Node) error {
		_, _, err := mpi.ReduceT(n.Comm, serial.IntC(), n.Rank()+1, func(a, b int) int { return a + b })
		return err
	})
}

func invokeSum(s *Session, name string) (int, error) {
	if err := s.Invoke(name); err != nil {
		return 0, err
	}
	sum, _, err := mpi.ReduceT(s.Node().Comm, serial.IntC(), s.Node().Rank()+1,
		func(a, b int) int { return a + b })
	return sum, err
}

func TestSessionIdenticalResultsUnderFaults(t *testing.T) {
	resetRegistry()
	registerSumKernel("chaos.sum")

	run := func(fault *transport.FaultConfig, rel *mpi.ReliableConfig) int {
		var sum int
		_, err := runGuarded(t, Config{
			Nodes: 4, CoresPerNode: 1,
			Fault:    fault,
			Reliable: rel,
		}, func(s *Session) error {
			var err error
			sum, err = invokeSum(s, "chaos.sum")
			return err
		})
		if err != nil {
			t.Fatalf("session: %v", err)
		}
		return sum
	}

	clean := run(nil, nil)
	faulty := run(chaosProfile(2026), fastRetry())
	if clean != faulty || clean != 1+2+3+4 {
		t.Fatalf("results diverged: clean=%d faulty=%d", clean, faulty)
	}
}

func TestCrashedWorkerFailsCollectiveGracefully(t *testing.T) {
	resetRegistry()
	registerSumKernel("chaos.crashsum")

	// Rank 3 dies on its very first send (the ack of the dispatch message),
	// so the collective can never complete. The session must come back with
	// a RankLostError-derived failure — not hang.
	cfg := chaosProfile(7)
	cfg.Default = transport.FaultProbs{} // crash only; isolate the failure mode
	cfg.Crashes = []transport.Crash{{Rank: 3, AfterSends: 0}}

	_, err := runGuarded(t, Config{
		Nodes: 4, CoresPerNode: 1,
		Fault:    cfg,
		Reliable: fastRetry(),
	}, func(s *Session) error {
		_, err := invokeSum(s, "chaos.crashsum")
		return err
	})
	if !errors.Is(err, mpi.ErrRankLost) {
		t.Fatalf("session err = %v, want ErrRankLost-derived", err)
	}
}

func TestFarmReassignsLostWorkerTasks(t *testing.T) {
	resetRegistry()
	resetFarmRegistry()
	RegisterFarm("chaos.double", func(n *Node, task []byte) ([]byte, error) {
		return []byte{task[0] * 2}, nil
	})

	// Rank 2 survives the dispatch handshake and a little work, then dies
	// mid-farm; its in-flight task must be reassigned and the job must
	// still produce every result.
	cfg := &transport.FaultConfig{
		Seed:    3,
		Crashes: []transport.Crash{{Rank: 2, AfterSends: 5}},
	}
	const tasks = 12
	var res *FarmResult
	_, err := runGuarded(t, Config{
		Nodes: 4, CoresPerNode: 1,
		Fault:    cfg,
		Reliable: fastRetry(),
	}, func(s *Session) error {
		in := make([][]byte, tasks)
		for i := range in {
			in[i] = []byte{byte(i)}
		}
		var err error
		res, err = s.Farm("chaos.double", in)
		return err
	})
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	for i, out := range res.Results {
		if len(out) != 1 || out[0] != byte(i*2) {
			t.Fatalf("task %d result = %v, want [%d]", i, out, i*2)
		}
	}
	if !res.PartialFailure() {
		t.Fatalf("lost worker not reported: %+v", res)
	}
	found := false
	for _, r := range res.Lost {
		if r == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("Lost = %v, want to include rank 2", res.Lost)
	}
}

func TestFarmMasterFallbackWhenAllWorkersDie(t *testing.T) {
	resetRegistry()
	resetFarmRegistry()
	RegisterFarm("chaos.square", func(n *Node, task []byte) ([]byte, error) {
		return []byte{task[0] * task[0]}, nil
	})

	// Every worker dies right after the dispatch handshake. The master is
	// the job's last resort: it must run the remaining tasks itself and
	// still return a complete result set.
	cfg := &transport.FaultConfig{
		Seed: 4,
		Crashes: []transport.Crash{
			{Rank: 1, AfterSends: 1},
			{Rank: 2, AfterSends: 1},
			{Rank: 3, AfterSends: 1},
		},
	}
	const tasks = 6
	var res *FarmResult
	_, err := runGuarded(t, Config{
		Nodes: 4, CoresPerNode: 1,
		Fault:    cfg,
		Reliable: fastRetry(),
	}, func(s *Session) error {
		in := make([][]byte, tasks)
		for i := range in {
			in[i] = []byte{byte(i)}
		}
		var err error
		res, err = s.Farm("chaos.square", in)
		return err
	})
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	for i, out := range res.Results {
		if len(out) != 1 || out[0] != byte(i*i) {
			t.Fatalf("task %d result = %v, want [%d]", i, out, i*i)
		}
	}
	if res.MasterRan == 0 {
		t.Fatalf("master never ran fallback tasks: %+v", res)
	}
	if len(res.Lost) != 3 {
		t.Fatalf("Lost = %v, want all three workers", res.Lost)
	}
}

func TestFarmTypedUnderLossyFabric(t *testing.T) {
	resetRegistry()
	resetFarmRegistry()
	RegisterFarm("chaos.scale", func(n *Node, task []byte) ([]byte, error) {
		v, err := serial.Unmarshal(serial.IntC(), task)
		if err != nil {
			return nil, err
		}
		return serial.Marshal(serial.IntC(), v*10), nil
	})

	in := []int{3, 1, 4, 1, 5, 9, 2, 6}
	var out []int
	var res *FarmResult
	_, err := runGuarded(t, Config{
		Nodes: 3, CoresPerNode: 1,
		Fault:    chaosProfile(11),
		Reliable: fastRetry(),
	}, func(s *Session) error {
		var err error
		out, res, err = FarmT(s, "chaos.scale", serial.IntC(), serial.IntC(), in)
		return err
	})
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	for i, v := range in {
		if out[i] != v*10 {
			t.Fatalf("out[%d] = %d, want %d (res=%+v)", i, out[i], v*10, res)
		}
	}
}

// A deterministically failing task must not kill the job: the supervisor
// retries it MaxAttempts times and then quarantines it in Failed, while
// every other task still completes.
func TestFarmErrorQuarantinesPoisonTask(t *testing.T) {
	resetRegistry()
	resetFarmRegistry()
	RegisterFarm("chaos.failing", func(n *Node, task []byte) ([]byte, error) {
		if task[0] == 2 {
			return nil, fmt.Errorf("task %d refused", task[0])
		}
		return task, nil
	})
	_, err := runGuarded(t, Config{
		Nodes: 3, CoresPerNode: 1,
		Reliable: fastRetry(),
	}, func(s *Session) error {
		fr, err := s.Farm("chaos.failing", [][]byte{{0}, {1}, {2}, {3}})
		if err != nil {
			return err
		}
		if len(fr.Failed) != 1 {
			return fmt.Errorf("Failed = %+v, want exactly the poison task", fr.Failed)
		}
		f := fr.Failed[0]
		if f.Task != 2 || f.Attempts != 3 || !strings.Contains(f.Err, "refused") {
			return fmt.Errorf("quarantine record = %+v", f)
		}
		if fr.Results[2] != nil {
			return fmt.Errorf("quarantined task has a result: %x", fr.Results[2])
		}
		for _, i := range []int{0, 1, 3} {
			if len(fr.Results[i]) != 1 || fr.Results[i][0] != byte(i) {
				return fmt.Errorf("task %d result = %x", i, fr.Results[i])
			}
		}
		if fr.Retried < 2 {
			return fmt.Errorf("Retried = %d, want >= 2 (poison task re-executions)", fr.Retried)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("farm with poison task: %v", err)
	}
}
