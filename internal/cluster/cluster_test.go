package cluster

import (
	"errors"
	"strings"
	"testing"
	"time"

	"triolet/internal/mpi"
	"triolet/internal/serial"
	"triolet/internal/transport"
)

// The tests register kernels per test via a reset registry; production code
// registers at init and never resets.

func TestConfigValidate(t *testing.T) {
	if _, err := Run(Config{Nodes: 0, CoresPerNode: 1}, nil); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := Run(Config{Nodes: 1, CoresPerNode: 0}, nil); err == nil {
		t.Fatal("invalid config accepted")
	}
	if (Config{Nodes: 3, CoresPerNode: 4}).TotalCores() != 12 {
		t.Fatal("TotalCores wrong")
	}
}

func TestMasterOnlySession(t *testing.T) {
	resetRegistry()
	ran := false
	_, err := Run(Config{Nodes: 3, CoresPerNode: 2}, func(s *Session) error {
		ran = true
		if !s.Node().IsRoot() || s.Node().Nodes() != 3 || s.Node().Cores() != 2 {
			t.Errorf("session node wrong: rank=%d nodes=%d cores=%d",
				s.Node().Rank(), s.Node().Nodes(), s.Node().Cores())
		}
		if s.Config().Nodes != 3 {
			t.Errorf("config = %+v", s.Config())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("master never ran")
	}
}

func TestInvokeRunsKernelOnAllWorkers(t *testing.T) {
	resetRegistry()
	// Kernel: every node contributes rank+1; master reduces.
	RegisterWorker("test.sum", func(n *Node) error {
		_, _, err := mpi.ReduceT(n.Comm, serial.IntC(), n.Rank()+1, func(a, b int) int { return a + b })
		return err
	})
	var got int
	_, err := Run(Config{Nodes: 4, CoresPerNode: 1}, func(s *Session) error {
		if err := s.Invoke("test.sum"); err != nil {
			return err
		}
		v, ok, err := mpi.ReduceT(s.Node().Comm, serial.IntC(), 1, func(a, b int) int { return a + b })
		if err != nil || !ok {
			return err
		}
		got = v
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1+2+3+4 {
		t.Fatalf("reduce = %d", got)
	}
}

func TestInvokeUnknownKernel(t *testing.T) {
	resetRegistry()
	_, err := Run(Config{Nodes: 2, CoresPerNode: 1}, func(s *Session) error {
		return s.Invoke("no.such.kernel")
	})
	if err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("err = %v", err)
	}
}

func TestRepeatedInvocations(t *testing.T) {
	resetRegistry()
	RegisterWorker("test.echo", func(n *Node) error {
		v, err := mpi.BcastT(n.Comm, 0, serial.IntC(), 0)
		if err != nil {
			return err
		}
		_, _, err = mpi.ReduceT(n.Comm, serial.IntC(), v*n.Rank(), func(a, b int) int { return a + b })
		return err
	})
	_, err := Run(Config{Nodes: 3, CoresPerNode: 1}, func(s *Session) error {
		for round := 1; round <= 5; round++ {
			if err := s.Invoke("test.echo"); err != nil {
				return err
			}
			if _, err := mpi.BcastT(s.Node().Comm, 0, serial.IntC(), round); err != nil {
				return err
			}
			v, _, err := mpi.ReduceT(s.Node().Comm, serial.IntC(), 0, func(a, b int) int { return a + b })
			if err != nil {
				return err
			}
			if v != round*(1+2) {
				t.Errorf("round %d: reduce = %d", round, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMasterErrorShutsDownWorkers(t *testing.T) {
	resetRegistry()
	sentinel := errors.New("master failed")
	_, err := Run(Config{Nodes: 4, CoresPerNode: 1}, func(s *Session) error {
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestMasterPanicIsReported(t *testing.T) {
	resetRegistry()
	_, err := Run(Config{Nodes: 2, CoresPerNode: 1}, func(s *Session) error {
		panic("master exploded")
	})
	if err == nil || !strings.Contains(err.Error(), "master exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestWorkerKernelErrorPropagates(t *testing.T) {
	resetRegistry()
	RegisterWorker("test.fail", func(n *Node) error {
		if n.Rank() == 1 {
			return errors.New("worker kernel failure")
		}
		// Other workers and master still complete their collective.
		_, _, err := mpi.ReduceT(n.Comm, serial.IntC(), 0, func(a, b int) int { return a + b })
		return err
	})
	_, err := Run(Config{Nodes: 3, CoresPerNode: 1}, func(s *Session) error {
		if err := s.Invoke("test.fail"); err != nil {
			return err
		}
		// Master participates in the kernel's reduce. Rank 1 died before
		// sending its contribution, so this blocks until the abort
		// machinery closes the fabric; the resulting error is joined with
		// rank 1's real failure.
		_, _, err := mpi.ReduceT(s.Node().Comm, serial.IntC(), 0, func(a, b int) int { return a + b })
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "worker kernel failure") {
		t.Fatalf("err = %v", err)
	}
}

func TestWorkerPanicAbortsJob(t *testing.T) {
	resetRegistry()
	RegisterWorker("test.panic", func(n *Node) error {
		if n.Rank() == 2 {
			panic("worker kernel exploded")
		}
		// Peers block on a collective that rank 2 will never join; the
		// abort machinery must unblock them.
		_, _, err := mpi.ReduceT(n.Comm, serial.IntC(), 1, func(a, b int) int { return a + b })
		return err
	})
	_, err := Run(Config{Nodes: 4, CoresPerNode: 1}, func(s *Session) error {
		if err := s.Invoke("test.panic"); err != nil {
			return err
		}
		_, _, err := mpi.ReduceT(s.Node().Comm, serial.IntC(), 1, func(a, b int) int { return a + b })
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "worker kernel exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	resetRegistry()
	RegisterWorker("dup", func(*Node) error { return nil })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RegisterWorker("dup", func(*Node) error { return nil })
}

func TestNodePoolUsable(t *testing.T) {
	resetRegistry()
	RegisterWorker("test.pool", func(n *Node) error {
		// Each node sums [0,100) on its thread pool, then reduces to root.
		v := poolSum(n, 100)
		_, _, err := mpi.ReduceT(n.Comm, serial.IntC(), v, func(a, b int) int { return a + b })
		return err
	})
	_, err := Run(Config{Nodes: 2, CoresPerNode: 3}, func(s *Session) error {
		if s.Node().Pool.Workers() != 3 {
			t.Errorf("pool workers = %d", s.Node().Pool.Workers())
		}
		if err := s.Invoke("test.pool"); err != nil {
			return err
		}
		got, _, err := mpi.ReduceT(s.Node().Comm, serial.IntC(), poolSum(s.Node(), 100), func(a, b int) int { return a + b })
		if err != nil {
			return err
		}
		if got != 2*4950 {
			t.Errorf("pool reduce = %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// poolSum sums [0,n) using the node's thread pool with per-worker partials.
func poolSum(n *Node, count int) int {
	partials := make([]int, n.Pool.Workers())
	n.Pool.ParallelFor(count, 10, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			partials[worker] += i
		}
	})
	total := 0
	for _, v := range partials {
		total += v
	}
	return total
}

func TestRunWithWireDelay(t *testing.T) {
	resetRegistry()
	RegisterWorker("test.delayed", func(n *Node) error {
		_, _, err := mpi.ReduceT(n.Comm, serial.IntC(), n.Rank(), func(a, b int) int { return a + b })
		return err
	})
	cfg := Config{
		Nodes:        3,
		CoresPerNode: 1,
		NetDelay:     &transport.DelayConfig{Latency: 2 * time.Millisecond},
	}
	start := time.Now()
	_, err := Run(cfg, func(s *Session) error {
		if err := s.Invoke("test.delayed"); err != nil {
			return err
		}
		v, _, err := mpi.ReduceT(s.Node().Comm, serial.IntC(), 0, func(a, b int) int { return a + b })
		if err != nil {
			return err
		}
		if v != 3 {
			t.Errorf("reduce = %d", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// At least the invoke broadcast + reduce + shutdown each paid latency.
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Errorf("delayed run finished in %v, suspiciously fast", elapsed)
	}
}

func TestStatsReturned(t *testing.T) {
	resetRegistry()
	stats, err := Run(Config{Nodes: 2, CoresPerNode: 1}, func(s *Session) error {
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// At minimum the shutdown broadcast crossed the fabric.
	if stats.Messages == 0 {
		t.Fatal("no messages recorded")
	}
}
