// Package cluster is the virtual cluster runtime: it launches N simulated
// nodes (goroutine groups), gives each one an MPI communicator over the
// shared fabric and a work-stealing thread pool for its cores, and runs a
// master/worker session on top — the two-level architecture of paper §3.4
// (message passing across nodes, threads within a node).
//
// The programming model mirrors Triolet's: a single master program (rank 0)
// runs the user's sequential-looking code, and parallel skeletons
// transparently ship work to the other nodes. Go closures cannot cross the
// serialization boundary, so cross-node code is named: worker-side kernel
// functions are registered once (RegisterWorker) and invoked by name —
// the moral equivalent of Triolet's serialized closures, under the SPMD
// assumption that every node runs the same binary.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"triolet/internal/mpi"
	"triolet/internal/sched"
	"triolet/internal/serial"
	"triolet/internal/trace"
	"triolet/internal/transport"
)

// Config describes the virtual cluster.
type Config struct {
	// Nodes is the number of simulated cluster nodes.
	Nodes int
	// CoresPerNode is each node's thread-pool width.
	CoresPerNode int
	// MaxMessageBytes caps fabric payloads (0 = unlimited); used by the
	// Eden baseline to model its bounded message buffer.
	MaxMessageBytes int
	// Tracer, when non-nil, records per-rank phase spans for the whole
	// run (see internal/trace). Skeletons annotate their scatter, kernel,
	// and reduce phases.
	Tracer *trace.Tracer
	// NetDelay, when non-nil, makes the fabric hold each message for
	// latency + size/bandwidth so real executions pay genuine
	// communication time (see transport.DelayConfig).
	NetDelay *transport.DelayConfig
	// Fault, when non-nil, enables deterministic fault injection on the
	// fabric: seeded drop/duplicate/reorder/corrupt/delay probabilities
	// plus pause and crash schedules (see transport.FaultConfig). A
	// faulty fabric needs Reliable set for sessions to survive it.
	Fault *transport.FaultConfig
	// Reliable, when non-nil, runs every rank's communicator in
	// acknowledged-delivery mode (sequence numbers, checksums, retry
	// with backoff, rank-loss detection; see mpi.ReliableConfig) and
	// switches kernel dispatch from the broadcast tree to direct
	// master→worker control messages, so a lost rank degrades the
	// session instead of wedging the tree.
	Reliable *mpi.ReliableConfig
	// FarmHeartbeat is the interval at which farm workers send liveness
	// beats to the master while a farm kernel is active (0 = 1ms). The
	// master's health monitor retires workers whose beats stop (see
	// FarmOptions.HeartbeatTimeout). Both sides read this config under
	// the SPMD assumption that every node runs the same binary.
	FarmHeartbeat time.Duration
	// Clock, when non-nil, replaces the fabric's time source (see
	// transport.Clock). The reliable layer's retry backoff and coalesce
	// deadlines read it, so tests can drive flush timing deterministically.
	Clock transport.Clock
}

// TotalCores reports Nodes × CoresPerNode.
func (c Config) TotalCores() int { return c.Nodes * c.CoresPerNode }

func (c Config) validate() error {
	if c.Nodes <= 0 || c.CoresPerNode <= 0 {
		return fmt.Errorf("cluster: invalid config %+v", c)
	}
	return nil
}

// Node bundles one rank's services: its communicator and its thread pool.
type Node struct {
	Comm   *mpi.Comm
	Pool   *sched.Pool
	Tracer *trace.Tracer
	cfg    Config
}

// Phase opens a trace span named phase on this node and returns its
// closer. With no tracer attached it is a no-op.
func (n *Node) Phase(phase string) func() { return n.Tracer.Begin(n.Rank(), phase) }

// Rank reports this node's rank.
func (n *Node) Rank() int { return n.Comm.Rank() }

// Nodes reports the cluster size.
func (n *Node) Nodes() int { return n.Comm.Size() }

// Cores reports this node's core count.
func (n *Node) Cores() int { return n.cfg.CoresPerNode }

// IsRoot reports whether this node is the master (rank 0).
func (n *Node) IsRoot() bool { return n.Comm.Rank() == 0 }

// Worker is a node-side kernel body. It runs on every non-master node when
// the master invokes the kernel's name; the matching master-side logic runs
// inline on rank 0. Worker and master sides communicate through the node's
// communicator (scatter/bcast/reduce collectives rooted at 0).
type Worker func(n *Node) error

var (
	regMu    sync.RWMutex
	registry = map[string]Worker{}
)

// RegisterWorker installs the worker-side body for a named kernel. It
// panics on duplicate registration with a different function — kernels are
// registered once at init time, like Triolet's compiled closure table.
// Re-registration of the same name is an error even with an identical body,
// to surface accidental name collisions early.
func RegisterWorker(name string, w Worker) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("cluster: duplicate kernel %q", name))
	}
	registry[name] = w
}

// lookupWorker finds a registered kernel body.
func lookupWorker(name string) (Worker, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	w, ok := registry[name]
	return w, ok
}

// resetRegistry clears the kernel table (tests only).
func resetRegistry() {
	regMu.Lock()
	defer regMu.Unlock()
	registry = map[string]Worker{}
}

// Session is the master's handle for invoking distributed kernels. It
// exists only on rank 0.
type Session struct {
	node   *Node
	fabric *transport.Fabric
}

// Node returns the master's node services (rank 0's communicator and pool);
// master-side kernel logic runs against it.
func (s *Session) Node() *Node { return s.node }

// Config reports the cluster configuration.
func (s *Session) Config() Config { return s.node.cfg }

// Fabric exposes the underlying fabric for traffic statistics.
func (s *Session) Fabric() *transport.Fabric { return s.fabric }

const shutdownName = "\x00shutdown"

// ctlTag is the reserved user tag for direct master→worker control
// messages (kernel dispatch and shutdown) in reliable mode. Applications
// must not send on it.
const ctlTag = mpi.MaxUserTag

// Invoke starts the named kernel on every worker node and returns once the
// dispatch is out; the caller then runs the master side of the kernel
// against s.Node(). Master side and worker sides must execute a matching
// collective sequence or the session deadlocks — same contract as MPI.
//
// In reliable mode a worker that was already lost makes Invoke fail with a
// RankLostError-derived error: collective kernels need full membership.
// Use Farm for work that should survive losing ranks.
func (s *Session) Invoke(name string) error {
	if _, ok := lookupWorker(name); !ok {
		return fmt.Errorf("cluster: kernel %q not registered", name)
	}
	if s.node.cfg.Reliable != nil {
		lost, err := s.dispatch(name)
		if err != nil {
			return fmt.Errorf("cluster: invoke %q: %w", name, err)
		}
		if len(lost) > 0 {
			return fmt.Errorf("cluster: invoke %q: workers %v: %w", name, lost, mpi.ErrRankLost)
		}
		return nil
	}
	_, err := mpi.BcastT(s.node.Comm, 0, stringCodec(), name)
	return err
}

// dispatch sends a control string to every worker directly, skipping ranks
// already known lost; it returns the ranks that could not be reached.
func (s *Session) dispatch(name string) (lost []int, err error) {
	for dst := 1; dst < s.node.Nodes(); dst++ {
		if err := s.node.Comm.Send(dst, ctlTag, []byte(name)); err != nil {
			if errors.Is(err, mpi.ErrRankLost) || errors.Is(err, transport.ErrCrashed) {
				lost = append(lost, dst)
				continue
			}
			return lost, err
		}
	}
	return lost, nil
}

// Run launches the virtual cluster, executes master on rank 0 with a
// Session, runs kernel-dispatch loops on all other ranks, and tears
// everything down. Fabric traffic statistics from the run are returned.
func Run(cfg Config, master func(s *Session) error) (transport.Stats, error) {
	return RunCtx(context.Background(), cfg, master)
}

// RunCtx is Run under a context. The context is attached to every rank's
// communicator, so cancelling it unwinds the whole session promptly: each
// blocked send/receive/collective returns ctx.Err(), no rank wedges, and
// RunCtx returns once every node goroutine has exited.
func RunCtx(ctx context.Context, cfg Config, master func(s *Session) error) (transport.Stats, error) {
	if err := cfg.validate(); err != nil {
		return transport.Stats{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	fabric := transport.New(transport.Config{
		Ranks:           cfg.Nodes,
		MaxMessageBytes: cfg.MaxMessageBytes,
		Delay:           cfg.NetDelay,
		Fault:           cfg.Fault,
		Clock:           cfg.Clock,
	})
	defer fabric.Close()

	errs := make([]error, cfg.Nodes)
	var wg sync.WaitGroup
	for r := range cfg.Nodes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			comm := newComm(fabric, r, cfg)
			comm.SetContext(ctx)
			node := &Node{
				Comm:   comm,
				Pool:   sched.NewPool(cfg.CoresPerNode),
				Tracer: cfg.Tracer,
				cfg:    cfg,
			}
			defer node.Pool.Close()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = fmt.Errorf("cluster: node %d panicked: %v", r, p)
					fabric.Close()
				}
			}()
			if r == 0 {
				s := &Session{node: node, fabric: fabric}
				errs[0] = masterMain(s, master)
			} else {
				errs[r] = workerMain(node)
			}
			if errs[r] != nil && !errors.Is(errs[r], transport.ErrCrashed) {
				// A failed rank aborts the whole job (MPI_Abort
				// semantics): peers blocked in collectives unblock with
				// ErrClosed rather than hanging on the dead rank. A rank
				// killed by fault injection is different — that death is
				// the experiment, and surviving it is the runtime's job,
				// so the fabric stays up for everyone else.
				fabric.Close()
			}
		}()
	}
	wg.Wait()
	stats := fabric.Stats()
	return stats, joinErrs(errs)
}

// newComm builds one rank's communicator according to the cluster config.
func newComm(fabric *transport.Fabric, rank int, cfg Config) *mpi.Comm {
	if cfg.Reliable == nil {
		return mpi.NewComm(fabric, rank)
	}
	rc := *cfg.Reliable
	if rc.Tracer == nil {
		rc.Tracer = cfg.Tracer
	}
	return mpi.NewReliableComm(fabric, rank, rc)
}

func masterMain(s *Session, master func(*Session) error) error {
	if err := master(s); err != nil {
		// A master-side failure may have desynchronized the collective
		// sequence, so an orderly shutdown broadcast could deadlock; tear
		// the fabric down instead, which unblocks every worker with
		// ErrClosed.
		s.fabric.Close()
		return err
	}
	if s.node.cfg.Reliable != nil {
		// Direct shutdown, tolerating ranks lost during the run: the
		// broadcast tree would wedge an entire subtree behind one dead
		// interior rank.
		_, err := s.dispatch(shutdownName)
		return err
	}
	_, bErr := mpi.BcastT(s.node.Comm, 0, stringCodec(), shutdownName)
	return bErr
}

func workerMain(n *Node) error {
	for {
		name, err := nextKernel(n)
		if err != nil {
			return err
		}
		if name == shutdownName {
			return nil
		}
		w, ok := lookupWorker(name)
		if !ok {
			return fmt.Errorf("cluster: node %d: unknown kernel %q", n.Rank(), name)
		}
		if err := w(n); err != nil {
			return fmt.Errorf("cluster: node %d: kernel %q: %w", n.Rank(), name, err)
		}
	}
}

// nextKernel waits for the master's next dispatch: a control message in
// reliable mode, a broadcast otherwise.
func nextKernel(n *Node) (string, error) {
	if n.cfg.Reliable != nil {
		m, err := n.Comm.Recv(0, ctlTag)
		if err != nil {
			return "", err
		}
		return string(m.Payload), nil
	}
	return mpi.BcastT(n.Comm, 0, stringCodec(), "")
}

func stringCodec() serial.Codec[string] {
	return serial.Funcs[string]{
		Enc: func(w *serial.Writer, v string) { w.String(v) },
		Dec: func(r *serial.Reader) string { return r.String() },
	}
}

func joinErrs(errs []error) error {
	// A rank killed by fault injection is a simulated process death, not a
	// job failure: the session's outcome is whatever the master reported
	// (success for a farm that reassigned the lost rank's tasks, a
	// RankLostError for a collective that needed it).
	kept := make([]error, 0, len(errs))
	for _, err := range errs {
		if err != nil && !errors.Is(err, transport.ErrCrashed) {
			kept = append(kept, err)
		}
	}
	return errors.Join(kept...)
}
