// AutoPar's cluster entry points. The perfmodel planner decides HOW a
// farm job should run (distribute or stay master-local, how many nodes);
// this file executes that decision and meters it, recording
// predicted-vs-observed trace instants so every auto-mapped run leaves an
// auditable accuracy trail:
//
//	plan.predicted        predicted wall time, µs
//	plan.predicted-bytes  predicted cross-fabric volume, bytes
//	plan.observed         observed wall time (fabric clock), µs
//	plan.observed-bytes   observed fabric volume delta, bytes
//
// cluster cannot import perfmodel (perfmodel imports the parboil ports,
// which import cluster), so the planner's Plan is projected into the
// dependency-free FarmPlan here and converted by callers (internal/harness).
package cluster

import (
	"context"
	"errors"
	"fmt"

	"triolet/internal/checkpoint"
	"triolet/internal/transport"
)

// FarmPlan is the cluster-level projection of a perfmodel plan: just what
// the runtime needs to place and meter the job.
type FarmPlan struct {
	// Distribute ships tasks to worker ranks; false runs them on the
	// master (the kernel's own parallel loops still use the local pool).
	Distribute bool
	// Nodes is the virtual cluster size the plan wants; AutoFarm sizes
	// the cluster with it, FarmAuto only sanity-checks it.
	Nodes int
	// Label qualifies the trace instants (the workload name).
	Label string
	// PredictedSeconds and PredictedBytes are the plan's predictions,
	// recorded before the run for later comparison.
	PredictedSeconds float64
	PredictedBytes   int64
}

// FarmAuto runs one farm job the way the plan says, inside an existing
// session, and records predicted/observed instants on the master's
// tracer. The observed wall time is measured on the fabric clock and
// the observed bytes from the fabric's meter, so both follow an injected
// test clock/fabric.
func (s *Session) FarmAuto(name string, tasks [][]byte, plan FarmPlan, opt FarmOptions) (*FarmResult, error) {
	tr := s.node.Tracer
	tr.Instant(0, "plan.predicted", int64(plan.PredictedSeconds*1e6))
	tr.Instant(0, "plan.predicted-bytes", plan.PredictedBytes)
	clk := s.fabric.Clock()
	before := s.fabric.Stats().Bytes
	start := clk.Now()

	var fr *FarmResult
	var err error
	if plan.Distribute && s.node.Nodes() > 1 {
		fr, err = s.FarmOpts(name, tasks, opt)
	} else {
		fr, err = s.farmLocal(name, tasks, opt)
	}

	tr.Instant(0, "plan.observed", clk.Now().Sub(start).Microseconds())
	tr.Instant(0, "plan.observed-bytes", s.fabric.Stats().Bytes-before)
	return fr, err
}

// farmLocal executes every task on the master under the farm's per-task
// failure policy (attempts, quarantine, checkpoint/resume, timing), with
// no worker dispatch. Tasks run one at a time: node-local parallelism
// belongs to the kernel's own pool loops, and the pool runs one region at
// a time.
func (s *Session) farmLocal(name string, tasks [][]byte, opt FarmOptions) (*FarmResult, error) {
	fn, ok := lookupFarm(name)
	if !ok {
		return nil, fmt.Errorf("cluster: farm kernel %q not registered", name)
	}
	ctx := opt.Context
	if ctx == nil {
		ctx = s.node.Comm.Context()
	}
	maxAttempts := opt.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = defaultMaxAttempts
	}
	if opt.Checkpoint != nil && opt.Job == "" {
		return nil, fmt.Errorf("cluster: farm %q: checkpointing requires a job name", name)
	}

	res := &FarmResult{Results: make([][]byte, len(tasks))}
	completed := make([]bool, len(tasks))
	tr := s.node.Tracer
	clk := s.fabric.Clock()

	record := func(rec checkpoint.Record) error {
		if opt.Checkpoint == nil {
			return nil
		}
		rec.Job = opt.Job
		if err := opt.Checkpoint.Append(rec); err != nil {
			return fmt.Errorf("cluster: farm %q checkpoint: %w", name, err)
		}
		tr.Instant(0, "farm.checkpoint", int64(len(rec.Payload)))
		return nil
	}

	if opt.Checkpoint != nil {
		recs, err := opt.Checkpoint.Load(opt.Job)
		if err != nil {
			return nil, fmt.Errorf("cluster: farm %q: load checkpoint: %w", name, err)
		}
		for _, rec := range recs {
			if rec.Task < 0 || rec.Task >= len(tasks) || completed[rec.Task] {
				continue
			}
			switch rec.Kind {
			case checkpoint.KindResult:
				res.Results[rec.Task] = rec.Payload
			case checkpoint.KindFailed:
				res.Failed = append(res.Failed, TaskFailure{
					Task: rec.Task, Attempts: rec.Attempts, Err: string(rec.Payload),
				})
			default:
				continue
			}
			completed[rec.Task] = true
			res.Resumed++
		}
		if res.Resumed > 0 {
			tr.Instant(0, "farm.resume", int64(res.Resumed))
		}
	}

	for idx := range tasks {
		if completed[idx] {
			continue
		}
		var lastErr error
		settled := false
		for attempt := 1; attempt <= maxAttempts && !settled; attempt++ {
			if err := ctx.Err(); err != nil {
				return res, fmt.Errorf("cluster: farm %q: %w", name, err)
			}
			start := clk.Now()
			out, ferr := runFarmTask(s.node, fn, tasks[idx])
			if ferr != nil {
				lastErr = ferr
				tr.Instant(0, "farm.task-fail", int64(idx))
				if attempt > 1 {
					res.Retried++
				}
				continue
			}
			if opt.OnTaskTiming != nil {
				if d := clk.Now().Sub(start); d > 0 {
					opt.OnTaskTiming(idx, d)
				}
			}
			if err := record(checkpoint.Record{Task: idx, Kind: checkpoint.KindResult, Payload: out}); err != nil {
				return res, err
			}
			res.Results[idx] = out
			res.MasterRan++
			settled = true
		}
		if !settled {
			msg := lastErr.Error()
			if err := record(checkpoint.Record{
				Task: idx, Kind: checkpoint.KindFailed, Attempts: maxAttempts, Payload: []byte(msg),
			}); err != nil {
				return res, err
			}
			res.Failed = append(res.Failed, TaskFailure{Task: idx, Attempts: maxAttempts, Err: msg})
			tr.Instant(0, "farm.quarantine", int64(idx))
		}
	}
	return res, nil
}

// AutoFarm provisions a virtual cluster sized by the plan, runs one farm
// job on it under FarmAuto's metering, and tears the cluster down. It is
// the one-call entry point for a planned job when no session exists yet;
// inside an existing session use Session.FarmAuto.
func AutoFarm(cfg Config, plan FarmPlan, name string, tasks [][]byte, opt FarmOptions) (*FarmResult, transport.Stats, error) {
	if plan.Distribute && plan.Nodes > 1 {
		cfg.Nodes = plan.Nodes
	} else {
		cfg.Nodes = 1
	}
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	var fr *FarmResult
	stats, err := RunCtx(ctx, cfg, func(s *Session) error {
		var ferr error
		fr, ferr = s.FarmAuto(name, tasks, plan, opt)
		return ferr
	})
	if err != nil && fr == nil && !errors.Is(err, context.Canceled) {
		return nil, stats, err
	}
	return fr, stats, err
}
