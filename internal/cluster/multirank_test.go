package cluster

import (
	"context"
	"testing"
	"time"

	"triolet/internal/mpi"
	"triolet/internal/transport"
)

// Multi-rank failure tests: overlapping worker deaths and pause-then-resume
// ranks, at both the farm and the Mux layer. The failure mode these exist
// to catch is correlated loss handled as if it were sequential — a second
// death inside the first one's detection window, or a retired rank coming
// back from the dead mid-run.

// Two workers die within the same beat window (their crash thresholds are a
// few sends apart, far less than one heartbeat round). The farm must retire
// both, reassign both workers' tasks, and still deliver every result.
func TestFarmSurvivesTwoRanksDyingInSameBeatWindow(t *testing.T) {
	resetRegistry()
	resetFarmRegistry()
	RegisterFarm("multirank.triple", func(n *Node, task []byte) ([]byte, error) {
		time.Sleep(time.Millisecond) // keep tasks in flight when the deaths land
		return []byte{task[0] * 3}, nil
	})

	cfg := &transport.FaultConfig{
		Seed: 9,
		Crashes: []transport.Crash{
			{Rank: 2, AfterSends: 4},
			{Rank: 3, AfterSends: 5},
		},
	}
	const tasks = 16
	var res *FarmResult
	_, err := runGuarded(t, Config{
		Nodes: 5, CoresPerNode: 1,
		Fault:    cfg,
		Reliable: fastRetry(),
	}, func(s *Session) error {
		in := make([][]byte, tasks)
		for i := range in {
			in[i] = []byte{byte(i)}
		}
		var err error
		res, err = s.Farm("multirank.triple", in)
		return err
	})
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	for i, out := range res.Results {
		if len(out) != 1 || out[0] != byte(i*3) {
			t.Fatalf("task %d result = %v, want [%d]", i, out, byte(i*3))
		}
	}
	lost := map[int]bool{}
	for _, r := range res.Lost {
		lost[r] = true
	}
	if !lost[2] || !lost[3] {
		t.Fatalf("Lost = %v, want both rank 2 and rank 3", res.Lost)
	}
}

// A rank pauses past the retirement window, then resumes. The master must
// retire it (exhausted acks — a paused inbox never acknowledges) and
// reassign its tasks; when the pause lifts, the parked frames deliver, the
// zombie worker executes and replies, and those late acks and late results
// must be ignored without a panic or a duplicate result.
func TestFarmPausedRankRetiredAndLateRepliesIgnored(t *testing.T) {
	resetRegistry()
	resetFarmRegistry()
	RegisterFarm("multirank.slowinc", func(n *Node, task []byte) ([]byte, error) {
		time.Sleep(3 * time.Millisecond) // stretch the farm past the pause
		return []byte{task[0] + 1}, nil
	})

	cfg := &transport.FaultConfig{
		Seed: 12,
		// Rank 1's inbox freezes shortly after the dispatch handshake and
		// stays frozen for 80ms — longer than the ack ladder below takes to
		// declare it lost, shorter than the farm takes to finish, so the
		// zombie's late replies land while the master is still collecting.
		Pauses: []transport.Pause{{Rank: 1, AfterDeliveries: 2, Duration: 80 * time.Millisecond}},
	}
	const tasks = 60
	var res *FarmResult
	_, err := runGuarded(t, Config{
		Nodes: 4, CoresPerNode: 1,
		Fault: cfg,
		Reliable: &mpi.ReliableConfig{
			AckTimeout:    500 * time.Microsecond,
			Retries:       10,
			MaxAckTimeout: 5 * time.Millisecond,
		},
	}, func(s *Session) error {
		in := make([][]byte, tasks)
		for i := range in {
			in[i] = []byte{byte(i)}
		}
		var err error
		res, err = s.Farm("multirank.slowinc", in)
		return err
	})
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	for i, out := range res.Results {
		if len(out) != 1 || out[0] != byte(i+1) {
			t.Fatalf("task %d result = %v, want [%d]", i, out, byte(i+1))
		}
	}
	lost := map[int]bool{}
	for _, r := range res.Lost {
		lost[r] = true
	}
	if !lost[1] {
		t.Fatalf("paused rank 1 not retired: Lost = %v", res.Lost)
	}
	// The parked task stayed queued when the assign send exhausted its acks
	// (a frozen inbox never acknowledges), so it ran on a surviving worker
	// — the complete, correct result set above is the reassignment proof.
	// In-flight reassignment after heartbeat silence is pinned separately
	// by TestFarmHeartbeatRetiresSilentWorker.
	if res.Failed != nil {
		t.Fatalf("quarantined tasks in a pause-only run: %+v", res.Failed)
	}
}

// muxDrive drains one job map through a Mux: dispatch to idle workers,
// requeue lost workers' assignments, collect results. Returns the results
// by job and the set of retired workers.
func muxDrive(t *testing.T, s *Session, m *Mux, queues map[string][]MuxAssignment) (map[string]map[int][]byte, map[int]bool) {
	t.Helper()
	results := map[string]map[int][]byte{}
	lost := map[int]bool{}
	remaining := 0
	for job, q := range queues {
		results[job] = map[int][]byte{}
		remaining += len(q)
	}
	pop := func() (MuxAssignment, bool) {
		// Deterministic interleave: alternate jobs in name order.
		for _, job := range []string{"job-a", "job-b"} {
			if q := queues[job]; len(q) > 0 {
				a := q[0]
				queues[job] = q[1:]
				return a, true
			}
		}
		return MuxAssignment{}, false
	}
	deadline := time.Now().Add(20 * time.Second)
	for remaining > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("mux drive wedged with %d tasks remaining", remaining)
		}
		for _, w := range m.Idle() {
			a, ok := pop()
			if !ok {
				break
			}
			if err := m.Assign(context.Background(), w, a); err != nil {
				t.Fatalf("assign: %v", err)
			}
		}
		ev, ok, err := m.Poll()
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		if !ok {
			if m.Workers() == 0 {
				if a, any := pop(); any {
					ev, ok = m.RunLocal(a), true
				}
			}
			if !ok {
				time.Sleep(100 * time.Microsecond)
				continue
			}
		}
		switch ev.Kind {
		case MuxWorkerLost:
			lost[ev.Worker] = true
			for _, a := range ev.Requeued {
				queues[a.Job] = append([]MuxAssignment{a}, queues[a.Job]...)
			}
		case MuxTaskDone:
			if !ev.OK {
				t.Fatalf("task %s/%d failed: %s", ev.Job, ev.Task, ev.Err)
			}
			if _, dup := results[ev.Job][ev.Task]; dup {
				continue // late duplicate from a retired worker
			}
			results[ev.Job][ev.Task] = ev.Result
			remaining--
		}
	}
	return results, lost
}

// The Mux interleaves tasks from two jobs onto one worker pool and routes
// every result back to its owning job.
func TestMuxInterleavesTwoJobsOnOnePool(t *testing.T) {
	resetRegistry()
	resetFarmRegistry()
	RegisterFarm("mux.double", func(n *Node, task []byte) ([]byte, error) {
		return []byte{task[0] * 2}, nil
	})
	RegisterFarm("mux.negate", func(n *Node, task []byte) ([]byte, error) {
		return []byte{0xFF - task[0]}, nil
	})

	_, err := runGuarded(t, Config{Nodes: 3, CoresPerNode: 1}, func(s *Session) error {
		m, err := s.OpenMux(MuxOptions{})
		if err != nil {
			return err
		}
		defer m.Close()
		queues := map[string][]MuxAssignment{"job-a": nil, "job-b": nil}
		for i := 0; i < 10; i++ {
			queues["job-a"] = append(queues["job-a"], MuxAssignment{
				Job: "job-a", Kernel: "mux.double", Task: i, Payload: []byte{byte(i)}})
			queues["job-b"] = append(queues["job-b"], MuxAssignment{
				Job: "job-b", Kernel: "mux.negate", Task: i, Payload: []byte{byte(i)}})
		}
		results, _ := muxDrive(t, s, m, queues)
		for i := 0; i < 10; i++ {
			if got := results["job-a"][i]; len(got) != 1 || got[0] != byte(i*2) {
				t.Errorf("job-a task %d = %v", i, got)
			}
			if got := results["job-b"][i]; len(got) != 1 || got[0] != 0xFF-byte(i) {
				t.Errorf("job-b task %d = %v", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("session: %v", err)
	}
}

// A worker dying mid-Mux surfaces as MuxWorkerLost carrying its in-flight
// assignment, and the job still finishes on the survivors.
func TestMuxWorkerLostRequeuesInFlightAssignment(t *testing.T) {
	resetRegistry()
	resetFarmRegistry()
	RegisterFarm("mux.slowsq", func(n *Node, task []byte) ([]byte, error) {
		time.Sleep(2 * time.Millisecond)
		return []byte{task[0] * task[0]}, nil
	})

	cfg := &transport.FaultConfig{
		Seed:    15,
		Crashes: []transport.Crash{{Rank: 2, AfterSends: 3}},
	}
	_, err := runGuarded(t, Config{
		Nodes: 3, CoresPerNode: 1,
		Fault:    cfg,
		Reliable: fastRetry(),
	}, func(s *Session) error {
		m, err := s.OpenMux(MuxOptions{})
		if err != nil {
			return err
		}
		defer m.Close()
		queues := map[string][]MuxAssignment{"job-a": nil}
		for i := 0; i < 8; i++ {
			queues["job-a"] = append(queues["job-a"], MuxAssignment{
				Job: "job-a", Kernel: "mux.slowsq", Task: i, Payload: []byte{byte(i)}})
		}
		results, lost := muxDrive(t, s, m, queues)
		if !lost[2] {
			t.Errorf("crashed rank 2 never reported lost: %v", lost)
		}
		for i := 0; i < 8; i++ {
			if got := results["job-a"][i]; len(got) != 1 || got[0] != byte(i*i) {
				t.Errorf("task %d = %v, want [%d]", i, got, byte(i*i))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("session: %v", err)
	}
}
