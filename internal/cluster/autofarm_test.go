package cluster

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"triolet/internal/checkpoint"
	"triolet/internal/trace"
)

func autoTasks(n int) [][]byte {
	tasks := make([][]byte, n)
	for i := range tasks {
		tasks[i] = []byte{byte(i), byte(i * 3)}
	}
	return tasks
}

// A master-local plan runs every task on the master and still leaves the
// full predicted/observed instant quartet on the tracer.
func TestFarmAutoLocalRecordsPlanInstants(t *testing.T) {
	resetRegistry()
	resetFarmRegistry()
	RegisterFarm("auto.double", func(n *Node, task []byte) ([]byte, error) {
		out := make([]byte, len(task))
		for i, b := range task {
			out[i] = b * 2
		}
		return out, nil
	})
	tr := trace.New()
	tasks := autoTasks(6)
	plan := FarmPlan{Distribute: false, Nodes: 1, Label: "auto-local",
		PredictedSeconds: 0.0025, PredictedBytes: 123}

	fr, _, err := AutoFarm(Config{CoresPerNode: 1, Tracer: tr}, plan, "auto.double", tasks, FarmOptions{})
	if err != nil {
		t.Fatalf("AutoFarm: %v", err)
	}
	if fr.MasterRan != len(tasks) {
		t.Fatalf("MasterRan = %d, want %d (local plan)", fr.MasterRan, len(tasks))
	}
	for i, task := range tasks {
		want := []byte{task[0] * 2, task[1] * 2}
		if !bytes.Equal(fr.Results[i], want) {
			t.Fatalf("result %d = %v, want %v", i, fr.Results[i], want)
		}
	}
	if got := tr.InstantValues("plan.predicted"); len(got) != 1 || got[0] != 2500 {
		t.Fatalf("plan.predicted = %v, want [2500] µs", got)
	}
	if got := tr.InstantValues("plan.predicted-bytes"); len(got) != 1 || got[0] != 123 {
		t.Fatalf("plan.predicted-bytes = %v, want [123]", got)
	}
	if got := tr.InstantValues("plan.observed"); len(got) != 1 || got[0] < 0 {
		t.Fatalf("plan.observed = %v, want one non-negative instant", got)
	}
	if got := tr.InstantValues("plan.observed-bytes"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("plan.observed-bytes = %v, want [0] for a local run", got)
	}
}

// A distributing plan sizes the cluster from the plan, produces the same
// bytes as the local path, and observes real fabric traffic.
func TestFarmAutoDistributedMatchesLocal(t *testing.T) {
	resetRegistry()
	resetFarmRegistry()
	RegisterFarm("auto.xform", func(n *Node, task []byte) ([]byte, error) {
		out := append([]byte{0xAB}, task...)
		return out, nil
	})
	tasks := autoTasks(12)

	local, _, err := AutoFarm(Config{CoresPerNode: 1}, FarmPlan{Distribute: false}, "auto.xform", tasks, FarmOptions{})
	if err != nil {
		t.Fatalf("local AutoFarm: %v", err)
	}
	tr := trace.New()
	dist, stats, err := AutoFarm(Config{CoresPerNode: 1, Tracer: tr},
		FarmPlan{Distribute: true, Nodes: 4, Label: "auto-dist"}, "auto.xform", tasks, FarmOptions{})
	if err != nil {
		t.Fatalf("distributed AutoFarm: %v", err)
	}
	for i := range tasks {
		if !bytes.Equal(local.Results[i], dist.Results[i]) {
			t.Fatalf("task %d: local %v != distributed %v", i, local.Results[i], dist.Results[i])
		}
	}
	if stats.Bytes == 0 {
		t.Fatal("distributed run moved no fabric bytes")
	}
	obs := tr.InstantValues("plan.observed-bytes")
	if len(obs) != 1 || obs[0] <= 0 {
		t.Fatalf("plan.observed-bytes = %v, want one positive instant", obs)
	}
}

// The local path reports every task's kernel time exactly once; the
// distributed path delivers timings over the (best-effort) beat tag with
// valid indices, positive durations, and no duplicates.
func TestFarmAutoTaskTimings(t *testing.T) {
	resetRegistry()
	resetFarmRegistry()
	RegisterFarm("auto.timed", func(n *Node, task []byte) ([]byte, error) {
		time.Sleep(200 * time.Microsecond)
		return task, nil
	})
	tasks := autoTasks(8)

	collect := func(plan FarmPlan) map[int]time.Duration {
		var mu sync.Mutex
		seen := make(map[int]time.Duration)
		opt := FarmOptions{OnTaskTiming: func(task int, d time.Duration) {
			mu.Lock()
			defer mu.Unlock()
			if _, dup := seen[task]; dup {
				t.Errorf("task %d timed twice", task)
			}
			seen[task] = d
		}}
		if _, _, err := AutoFarm(Config{CoresPerNode: 1}, plan, "auto.timed", tasks, opt); err != nil {
			t.Fatalf("AutoFarm: %v", err)
		}
		return seen
	}

	local := collect(FarmPlan{Distribute: false})
	if len(local) != len(tasks) {
		t.Fatalf("local path timed %d/%d tasks", len(local), len(tasks))
	}
	dist := collect(FarmPlan{Distribute: true, Nodes: 3})
	if len(dist) == 0 {
		t.Fatal("distributed path delivered no timing beats")
	}
	for task, d := range dist {
		if task < 0 || task >= len(tasks) {
			t.Fatalf("timing for out-of-range task %d", task)
		}
		if d <= 0 {
			t.Fatalf("task %d has non-positive duration %v", task, d)
		}
	}
}

// farmLocal honors the farm failure policy: retries up to MaxAttempts,
// quarantines persistent failures, and leaves the fail/quarantine instants.
func TestFarmLocalRetriesAndQuarantines(t *testing.T) {
	resetRegistry()
	resetFarmRegistry()
	RegisterFarm("auto.flaky", func(n *Node, task []byte) ([]byte, error) {
		if len(task) > 0 && task[0] == 0xFF {
			return nil, errors.New("always fails")
		}
		return task, nil
	})
	tasks := autoTasks(5)
	tasks[2] = []byte{0xFF, 1}
	tr := trace.New()

	fr, _, err := AutoFarm(Config{CoresPerNode: 1, Tracer: tr},
		FarmPlan{Distribute: false, Label: "auto-flaky"}, "auto.flaky", tasks,
		FarmOptions{MaxAttempts: 2})
	if err != nil {
		t.Fatalf("AutoFarm: %v", err)
	}
	if len(fr.Failed) != 1 || fr.Failed[0].Task != 2 || fr.Failed[0].Attempts != 2 {
		t.Fatalf("Failed = %+v, want task 2 after 2 attempts", fr.Failed)
	}
	if fr.Results[2] != nil {
		t.Fatal("quarantined task has a result")
	}
	if fr.Retried != 1 {
		t.Fatalf("Retried = %d, want 1", fr.Retried)
	}
	if got := tr.InstantValues("farm.task-fail"); len(got) != 2 {
		t.Fatalf("farm.task-fail instants = %v, want 2", got)
	}
	if got := tr.InstantValues("farm.quarantine"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("farm.quarantine instants = %v, want [2]", got)
	}
}

// farmLocal resumes from a checkpoint store exactly like the distributed
// farm: stored tasks are returned bit-identically and never re-executed.
func TestFarmLocalCheckpointResume(t *testing.T) {
	resetRegistry()
	resetFarmRegistry()
	executed := make(map[byte]bool)
	var mu sync.Mutex
	RegisterFarm("auto.ckpt", func(n *Node, task []byte) ([]byte, error) {
		mu.Lock()
		executed[task[0]] = true
		mu.Unlock()
		return append([]byte("out:"), task...), nil
	})
	store := checkpoint.NewMem()
	if err := store.Append(checkpoint.Record{
		Job: "auto-j", Task: 0, Kind: checkpoint.KindResult, Payload: []byte("stored"),
	}); err != nil {
		t.Fatal(err)
	}
	tasks := [][]byte{{10}, {11}, {12}}
	tr := trace.New()

	fr, _, err := AutoFarm(Config{CoresPerNode: 1, Tracer: tr}, FarmPlan{Distribute: false},
		"auto.ckpt", tasks, FarmOptions{Checkpoint: store, Job: "auto-j"})
	if err != nil {
		t.Fatalf("AutoFarm: %v", err)
	}
	if fr.Resumed != 1 {
		t.Fatalf("Resumed = %d, want 1", fr.Resumed)
	}
	if !bytes.Equal(fr.Results[0], []byte("stored")) {
		t.Fatalf("resumed result = %q, want stored bytes", fr.Results[0])
	}
	mu.Lock()
	ran0 := executed[10]
	mu.Unlock()
	if ran0 {
		t.Fatal("checkpointed task re-executed")
	}
	if got := tr.InstantValues("farm.resume"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("farm.resume instants = %v, want [1]", got)
	}
	// All three tasks are now durable: a fresh run resumes everything.
	fr2, _, err := AutoFarm(Config{CoresPerNode: 1}, FarmPlan{Distribute: false},
		"auto.ckpt", tasks, FarmOptions{Checkpoint: store, Job: "auto-j"})
	if err != nil {
		t.Fatalf("second AutoFarm: %v", err)
	}
	if fr2.Resumed != len(tasks) {
		t.Fatalf("second run Resumed = %d, want %d", fr2.Resumed, len(tasks))
	}
	for i := range tasks {
		if !bytes.Equal(fr2.Results[i], fr.Results[i]) {
			t.Fatalf("resumed result %d diverged: %q vs %q", i, fr2.Results[i], fr.Results[i])
		}
	}
}
