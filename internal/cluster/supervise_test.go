package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"triolet/internal/checkpoint"
	"triolet/internal/serial"
	"triolet/internal/trace"
)

// Supervision tests: the farm's per-task failure policy, panic containment,
// heartbeat health monitor, checkpoint/resume, and cancellation — the
// behaviors that keep one bad task, one silent worker, or one killed master
// from taking the whole job down.

// A panicking kernel is a per-task failure, not a dead rank: the panic is
// recovered on the worker, retried, and quarantined like any other error.
func TestFarmPanicQuarantined(t *testing.T) {
	resetRegistry()
	resetFarmRegistry()
	RegisterFarm("sup.panics", func(n *Node, task []byte) ([]byte, error) {
		if task[0] == 1 {
			panic("kernel bug")
		}
		return task, nil
	})
	_, err := runGuarded(t, Config{Nodes: 3, CoresPerNode: 1}, func(s *Session) error {
		fr, err := s.Farm("sup.panics", [][]byte{{0}, {1}, {2}})
		if err != nil {
			return err
		}
		if len(fr.Failed) != 1 || fr.Failed[0].Task != 1 {
			return fmt.Errorf("Failed = %+v, want task 1 quarantined", fr.Failed)
		}
		if f := fr.Failed[0]; f.Attempts != 3 || !strings.Contains(f.Err, "panicked") {
			return fmt.Errorf("quarantine record = %+v", f)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// A master-side panic in the fallback path is contained the same way.
func TestFarmMasterFallbackPanicQuarantined(t *testing.T) {
	resetRegistry()
	resetFarmRegistry()
	RegisterFarm("sup.solo-panic", func(n *Node, task []byte) ([]byte, error) {
		if task[0] == 0 {
			panic("boom")
		}
		return []byte{task[0] * 2}, nil
	})
	// Nodes: 1 → no workers exist, every task runs on the master.
	_, err := runGuarded(t, Config{Nodes: 1, CoresPerNode: 1}, func(s *Session) error {
		fr, err := s.Farm("sup.solo-panic", [][]byte{{0}, {1}, {2}})
		if err != nil {
			return err
		}
		if fr.MasterRan < 2 {
			return fmt.Errorf("MasterRan = %d", fr.MasterRan)
		}
		if len(fr.Failed) != 1 || fr.Failed[0].Task != 0 {
			return fmt.Errorf("Failed = %+v", fr.Failed)
		}
		if fr.Results[1][0] != 2 || fr.Results[2][0] != 4 {
			return fmt.Errorf("results = %v", fr.Results)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// A task that fails transiently succeeds on retry and is not quarantined.
func TestFarmTransientFailureRetried(t *testing.T) {
	resetRegistry()
	resetFarmRegistry()
	var failures atomic.Int32
	RegisterFarm("sup.flaky", func(n *Node, task []byte) ([]byte, error) {
		if task[0] == 1 && failures.Add(1) <= 2 {
			return nil, errors.New("transient")
		}
		return task, nil
	})
	_, err := runGuarded(t, Config{Nodes: 3, CoresPerNode: 1}, func(s *Session) error {
		fr, err := s.FarmOpts("sup.flaky", [][]byte{{0}, {1}, {2}}, FarmOptions{MaxAttempts: 5})
		if err != nil {
			return err
		}
		if len(fr.Failed) != 0 {
			return fmt.Errorf("transiently failing task quarantined: %+v", fr.Failed)
		}
		if fr.Retried != 2 {
			return fmt.Errorf("Retried = %d, want 2", fr.Retried)
		}
		if fr.Results[1][0] != 1 {
			return fmt.Errorf("results = %v", fr.Results)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// A worker that goes silent — no beats, no results — is retired by the
// heartbeat monitor and its task finishes elsewhere.
func TestFarmHeartbeatRetiresSilentWorker(t *testing.T) {
	resetRegistry()
	resetFarmRegistry()
	RegisterFarm("sup.slow", func(n *Node, task []byte) ([]byte, error) {
		if !n.IsRoot() {
			time.Sleep(200 * time.Millisecond) // far beyond the heartbeat timeout
		}
		return task, nil
	})
	tr := trace.New()
	_, err := runGuarded(t, Config{
		Nodes: 2, CoresPerNode: 1,
		Tracer:        tr,
		FarmHeartbeat: time.Hour, // beats never arrive: the worker reads as silent
	}, func(s *Session) error {
		fr, err := s.FarmOpts("sup.slow", [][]byte{{0}, {1}}, FarmOptions{
			HeartbeatTimeout: 20 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		if len(fr.Lost) != 1 || fr.Lost[0] != 1 {
			return fmt.Errorf("Lost = %v, want [1]", fr.Lost)
		}
		if fr.MasterRan != 2 {
			return fmt.Errorf("MasterRan = %d, want 2", fr.MasterRan)
		}
		if fr.Reassigned != 1 {
			return fmt.Errorf("Reassigned = %d, want 1", fr.Reassigned)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count("farm.heartbeat-miss") < 1 {
		t.Fatal("no farm.heartbeat-miss trace event")
	}
	if tr.Count("farm.retire") < 1 {
		t.Fatal("no farm.retire trace event")
	}
}

// Heartbeats keep a slow-but-alive worker employed: with beats flowing, a
// kernel that outlives the heartbeat timeout must NOT be retired.
func TestFarmHeartbeatKeepsSlowWorkerAlive(t *testing.T) {
	resetRegistry()
	resetFarmRegistry()
	RegisterFarm("sup.slow-alive", func(n *Node, task []byte) ([]byte, error) {
		time.Sleep(60 * time.Millisecond)
		return task, nil
	})
	_, err := runGuarded(t, Config{
		Nodes: 2, CoresPerNode: 1,
		FarmHeartbeat: time.Millisecond,
	}, func(s *Session) error {
		fr, err := s.FarmOpts("sup.slow-alive", [][]byte{{7}}, FarmOptions{
			HeartbeatTimeout: 20 * time.Millisecond, // << the kernel's 60ms
		})
		if err != nil {
			return err
		}
		if len(fr.Lost) != 0 {
			return fmt.Errorf("beating worker retired: Lost = %v", fr.Lost)
		}
		if fr.MasterRan != 0 {
			return fmt.Errorf("master stole the task: MasterRan = %d", fr.MasterRan)
		}
		if fr.Results[0][0] != 7 {
			return fmt.Errorf("results = %v", fr.Results)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Resume: tasks already in the checkpoint store are restored, not re-run.
func TestFarmResumeSkipsCheckpointedTasks(t *testing.T) {
	resetRegistry()
	resetFarmRegistry()
	var execs atomic.Int32
	RegisterFarm("sup.ckpt", func(n *Node, task []byte) ([]byte, error) {
		execs.Add(1)
		return append([]byte("out:"), task...), nil
	})
	store := checkpoint.NewMem()
	// Tasks 0 and 2 already finished in a previous life; 3 was quarantined.
	mustAppend := func(rec checkpoint.Record) {
		if err := store.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	mustAppend(checkpoint.Record{Job: "j", Task: 0, Kind: checkpoint.KindResult, Payload: []byte("out:a")})
	mustAppend(checkpoint.Record{Job: "j", Task: 2, Kind: checkpoint.KindResult, Payload: []byte("out:c")})
	mustAppend(checkpoint.Record{Job: "j", Task: 3, Kind: checkpoint.KindFailed, Attempts: 3, Payload: []byte("poison")})
	mustAppend(checkpoint.Record{Job: "other", Task: 1, Kind: checkpoint.KindResult, Payload: []byte("WRONG")})
	_, err := runGuarded(t, Config{Nodes: 3, CoresPerNode: 1}, func(s *Session) error {
		fr, err := s.FarmOpts("sup.ckpt",
			[][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d")},
			FarmOptions{Checkpoint: store, Job: "j"})
		if err != nil {
			return err
		}
		if fr.Resumed != 3 {
			return fmt.Errorf("Resumed = %d, want 3", fr.Resumed)
		}
		want := [][]byte{[]byte("out:a"), []byte("out:b"), []byte("out:c"), nil}
		for i, w := range want {
			if !bytes.Equal(fr.Results[i], w) {
				return fmt.Errorf("result %d = %q, want %q", i, fr.Results[i], w)
			}
		}
		if len(fr.Failed) != 1 || fr.Failed[0].Task != 3 || fr.Failed[0].Err != "poison" {
			return fmt.Errorf("Failed = %+v", fr.Failed)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("kernel executed %d times, want 1 (only the unfinished task)", got)
	}
	// The store now holds the full job: a second run resumes everything.
	execs.Store(0)
	_, err = runGuarded(t, Config{Nodes: 3, CoresPerNode: 1}, func(s *Session) error {
		fr, err := s.FarmOpts("sup.ckpt",
			[][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d")},
			FarmOptions{Checkpoint: store, Job: "j"})
		if err != nil {
			return err
		}
		if fr.Resumed != 4 {
			return fmt.Errorf("second run Resumed = %d, want 4", fr.Resumed)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := execs.Load(); got != 0 {
		t.Fatalf("fully checkpointed job re-executed %d tasks", got)
	}
}

// Checkpointing requires a job name.
func TestFarmCheckpointRequiresJobName(t *testing.T) {
	resetRegistry()
	resetFarmRegistry()
	RegisterFarm("sup.noname", func(n *Node, task []byte) ([]byte, error) { return task, nil })
	_, err := runGuarded(t, Config{Nodes: 1, CoresPerNode: 1}, func(s *Session) error {
		_, err := s.FarmOpts("sup.noname", [][]byte{{1}}, FarmOptions{Checkpoint: checkpoint.NewMem()})
		if err == nil {
			return errors.New("checkpointing without a job name accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Cancelling the session context unwinds a running farm promptly: the
// master's Farm call returns ctx.Err(), the master tears the session down,
// and RunCtx returns — all well under a second for a farm that would
// otherwise run much longer.
func TestFarmCancellationUnwindsSession(t *testing.T) {
	resetRegistry()
	resetFarmRegistry()
	RegisterFarm("sup.endless", func(n *Node, task []byte) ([]byte, error) {
		time.Sleep(10 * time.Millisecond)
		return task, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	tasks := make([][]byte, 500) // ~5s of sequential work: cancel must cut it short
	for i := range tasks {
		tasks[i] = []byte{byte(i)}
	}
	var farmReturned time.Duration
	var cancelAt time.Time
	done := make(chan error, 1)
	go func() {
		_, err := RunCtx(ctx, Config{Nodes: 2, CoresPerNode: 1}, func(s *Session) error {
			_, err := s.Farm("sup.endless", tasks)
			farmReturned = time.Since(cancelAt)
			return err
		})
		done <- err
	}()
	time.Sleep(30 * time.Millisecond) // let the farm get going
	cancelAt = time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunCtx = %v, want context.Canceled in the chain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("session did not unwind on cancel")
	}
	if farmReturned > 100*time.Millisecond {
		t.Fatalf("Farm took %v to observe cancel, want < 100ms", farmReturned)
	}
}

// FarmT skips decoding quarantined tasks: their slots hold R's zero value.
func TestFarmTZeroValueForQuarantined(t *testing.T) {
	resetRegistry()
	resetFarmRegistry()
	var intCodec serial.Codec[int] = serial.Funcs[int]{
		Enc: func(w *serial.Writer, v int) { w.Int(v) },
		Dec: func(r *serial.Reader) int { return r.Int() },
	}
	RegisterFarm("sup.typed", func(n *Node, task []byte) ([]byte, error) {
		v, err := serial.Unmarshal(intCodec, task)
		if err != nil {
			return nil, err
		}
		if v == 2 {
			return nil, errors.New("poison")
		}
		return serial.Marshal(intCodec, v*10), nil
	})
	_, err := runGuarded(t, Config{Nodes: 3, CoresPerNode: 1}, func(s *Session) error {
		out, fr, err := FarmT(s, "sup.typed", intCodec, intCodec, []int{1, 2, 3})
		if err != nil {
			return err
		}
		if len(fr.Failed) != 1 || fr.Failed[0].Task != 1 {
			return fmt.Errorf("Failed = %+v", fr.Failed)
		}
		if out[0] != 10 || out[1] != 0 || out[2] != 30 {
			return fmt.Errorf("out = %v, want [10 0 30]", out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
