module triolet

go 1.24
