// Package triolet is a Go reproduction of "Triolet: A Programming System
// that Unifies Algorithmic Skeleton Interfaces for High-Performance
// Cluster Computing" (Rodrigues, Jablin, Dakkak, Hwu; PPoPP 2014).
//
// The library lives under internal/: hybrid fusible iterators (iter),
// index domains (domain), a serialization runtime (serial), a virtual
// cluster fabric with MPI-style collectives (transport, mpi), a
// work-stealing thread pool (sched), the two-level cluster runtime and
// distributed skeletons (cluster, core), the Eden and C+MPI+OpenMP
// comparison baselines (eden, refc-style code inside each benchmark), the
// four Parboil evaluation workloads (parboil/...), and the calibrated
// performance model that regenerates the paper's figures (perfmodel,
// harness).
//
// See README.md for a tour, DESIGN.md for the system inventory and the
// simulation substitutions, and EXPERIMENTS.md for paper-vs-measured
// results. The root-level benchmarks in bench_test.go regenerate every
// evaluation table and figure; `go run ./cmd/triolet-bench` prints them.
package triolet
