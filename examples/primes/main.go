// Primes: a distributed irregular pipeline — the class of loop the paper's
// hybrid iterators exist for. Each node filters its slice of candidates
// through a fused filter (no counting pass, no temporary candidate list),
// packs its survivors with a collector, and the master concatenates
// sections in order. The number of outputs per node is only known at run
// time, which is exactly what defeats indexer-only frameworks (paper §1).
//
//	go run ./examples/primes
package main

import (
	"fmt"
	"log"

	"triolet/internal/cluster"
	"triolet/internal/core"
	"triolet/internal/iter"
	"triolet/internal/serial"
	"triolet/internal/trace"
)

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// primesOp: the registered distributed kernel. The iterator pipeline
// filter(isPrime, candidates) fuses into each node's pack loop.
var primesOp = core.NewFlatMap(
	"primes.sieve",
	serial.Ints(),
	serial.Unit(),
	serial.Ints(),
	func(n *cluster.Node, candidates []int, _ struct{}) ([]int, error) {
		it := iter.LocalPar(iter.Filter(isPrime, iter.FromSlice(candidates)))
		return core.CollectLocal(n.Pool, it, 512), nil
	},
)

func main() {
	const limit = 200_000
	candidates := make([]int, limit)
	for i := range candidates {
		candidates[i] = i
	}

	tracer := trace.New()
	var primes []int
	stats, err := cluster.Run(cluster.Config{Nodes: 4, CoresPerNode: 2, Tracer: tracer},
		func(s *cluster.Session) error {
			out, err := primesOp.Run(s, core.SliceSource(candidates), struct{}{})
			primes = out
			return err
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("primes below %d: %d (last few: %v)\n", limit, len(primes), primes[len(primes)-4:])

	// Sequential cross-check through the same fused pipeline.
	seq := iter.ToSlice(iter.Filter(isPrime, iter.FromSlice(candidates)))
	if len(seq) != len(primes) {
		log.Fatalf("distributed %d primes, sequential %d", len(primes), len(seq))
	}
	for i := range seq {
		if seq[i] != primes[i] {
			log.Fatalf("order differs at %d", i)
		}
	}
	fmt.Println("distributed output equals sequential output, element for element")
	fmt.Printf("fabric: %d messages, %.1f KB (candidate slices out, packed primes back)\n",
		stats.Messages, float64(stats.Bytes)/1024)
}
