// Transpose: the paper's canonical localpar workload (§2, §4.3) — matrix
// transposition does too little work per byte to parallelize profitably
// over distributed memory, but wins from shared-memory threads on one
// node. Written as the paper's gather comprehension:
//
//	[A[x,y] for (y, x) in arrayRange((0,0), (h, w))]
//
// The program builds the transpose three ways — sequentially, with the
// 2-D iterator pipeline under localpar, and with the tuned kernel sgemm
// uses — and times them.
//
//	go run ./examples/transpose
package main

import (
	"fmt"
	"time"

	"triolet/internal/array"
	"triolet/internal/core"
	"triolet/internal/domain"
	"triolet/internal/iter"
	"triolet/internal/parboil/sgemm"
	"triolet/internal/sched"
)

func main() {
	const h, w = 1200, 900
	a := array.NewMatrix[float32](h, w)
	for i := range a.Data {
		a.Data[i] = float32(i % 1000)
	}

	// 1. Sequential library transpose.
	t0 := time.Now()
	seq := array.Transpose(a)
	seqDur := time.Since(t0)

	// 2. The comprehension, thread-parallel: output position (y, x) reads
	//    input (x, y); Build2Local evaluates disjoint rectangles on the
	//    work-stealing pool.
	pool := sched.NewPool(4)
	defer pool.Close()
	gather := iter.LocalPar2(iter.Map2(func(ix domain.Ix2) float32 {
		return a.At(ix.X, ix.Y)
	}, iter.ArrayRange2(domain.Dim2{H: w, W: h})))
	t0 = time.Now()
	par := core.Build2Local(pool, gather)
	parDur := time.Since(t0)

	// 3. The tuned row-band kernel used by sgemm.
	t0 = time.Now()
	tuned := sgemm.TransposeLocal(pool, a)
	tunedDur := time.Since(t0)

	// All three must agree exactly.
	for i := range seq.Data {
		if par.Data[i] != seq.Data[i] || tuned.Data[i] != seq.Data[i] {
			panic(fmt.Sprintf("transpose mismatch at %d", i))
		}
	}

	fmt.Printf("transpose of %dx%d float32:\n", h, w)
	fmt.Printf("  sequential            %8s\n", seqDur.Round(time.Microsecond))
	fmt.Printf("  localpar comprehension%8s\n", parDur.Round(time.Microsecond))
	fmt.Printf("  localpar tuned kernel %8s\n", tunedDur.Round(time.Microsecond))
	fmt.Println("all three results identical")
	fmt.Println()
	fmt.Println("(In the paper, Eden cannot use shared memory: its sgemm transposes")
	fmt.Println("sequentially and spends 35% of its 128-core time there, §4.3.)")
}
