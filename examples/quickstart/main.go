// Quickstart: the paper's first example (§2) — a parallel dot product.
//
//	def dot(xs, ys):
//	    return sum(x*y for (x, y) in par(zip(xs, ys)))
//
// This program writes the same pipeline with the Go library at three
// scales: fused sequential, thread-parallel on one node (localpar), and
// distributed across a virtual cluster (par), and shows they agree.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"triolet/internal/cluster"
	"triolet/internal/core"
	"triolet/internal/domain"
	"triolet/internal/iter"
	"triolet/internal/sched"
	"triolet/internal/serial"
)

// dot is the sequential-looking pipeline: zip, multiply, sum. The library
// fuses the three calls into one loop at construction time; no pair array
// is ever materialized.
func dot(xs, ys []float64) iter.Iter[float64] {
	return iter.ZipWith(func(x, y float64) float64 { return x * y },
		iter.FromSlice(xs), iter.FromSlice(ys))
}

// dotPair is one node's slice of both vectors plus its codec — the unit
// the distributed skeleton ships. Slicing sends each node only its
// sub-vectors (paper §3.5).
type dotPair struct{ Xs, Ys []float64 }

func dotPairCodec() serial.Codec[dotPair] {
	return serial.Funcs[dotPair]{
		Enc: func(w *serial.Writer, v dotPair) { w.F64Slice(v.Xs); w.F64Slice(v.Ys) },
		Dec: func(r *serial.Reader) dotPair { return dotPair{Xs: r.F64Slice(), Ys: r.F64Slice()} },
	}
}

// dotOp registers the distributed kernel once: each node reduces its
// slice with the same fused pipeline, thread-parallel on its cores.
var dotOp = core.NewMapReduce(
	"quickstart.dot",
	dotPairCodec(),
	serial.Unit(),
	serial.F64C(),
	func(n *cluster.Node, s dotPair, _ struct{}) (float64, error) {
		return core.SumLocal(n.Pool, iter.LocalPar(dot(s.Xs, s.Ys)), 1024), nil
	},
	func(a, b float64) float64 { return a + b },
)

func main() {
	const n = 1 << 20
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i%100) * 0.01
		ys[i] = float64((i+7)%100) * 0.02
	}

	// 1. Sequential: the fused pipeline on the calling goroutine.
	seq := iter.Sum(dot(xs, ys))
	fmt.Printf("sequential        : %.4f\n", seq)

	// 2. localpar: work-stealing threads on one node.
	pool := sched.NewPool(4)
	par := core.SumLocal(pool, iter.LocalPar(dot(xs, ys)), 4096)
	pool.Close()
	fmt.Printf("localpar (4 cores): %.4f  (diff %g)\n", par, par-seq)

	// 3. par: a virtual cluster of 4 nodes × 2 cores. Each node receives
	//    only its slice of xs and ys, serialized through the fabric.
	src := core.FuncSource[dotPair]{
		N: n,
		SliceFn: func(r domain.Range) dotPair {
			return dotPair{Xs: xs[r.Lo:r.Hi], Ys: ys[r.Lo:r.Hi]}
		},
	}
	var dist float64
	stats, err := cluster.Run(cluster.Config{Nodes: 4, CoresPerNode: 2},
		func(s *cluster.Session) error {
			v, err := dotOp.Run(s, src, struct{}{})
			dist = v
			return err
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("par (4x2 cluster) : %.4f  (diff %g)\n", dist, dist-seq)
	fmt.Printf("fabric: %d messages, %.1f MB\n", stats.Messages, float64(stats.Bytes)/(1<<20))
}
