// CUTCP: the paper's motivating example (§1) — a floating-point histogram
// over an irregular nested traversal:
//
//	floatHist [f a r | a <- atoms, r <- gridPts a]
//
// Computes the cutoff Coulombic potential of a synthetic molecular system
// on a virtual cluster and reports a slice of the potential field.
//
//	go run ./examples/cutcp
package main

import (
	"fmt"
	"log"

	"triolet/internal/cluster"
	"triolet/internal/domain"
	"triolet/internal/parboil"
	"triolet/internal/parboil/cutcp"
)

func main() {
	dim := domain.Dim3{D: 24, H: 24, W: 24}
	in := cutcp.Gen(2000, dim, 0.5, 2.5, 11)
	fmt.Printf("cutcp: %d atoms on a %dx%dx%d grid (spacing %.1f, cutoff %.1f)\n",
		len(in.Atoms), dim.D, dim.H, dim.W, in.Geo.Spacing, in.Geo.Cutoff)

	var grid []float32
	stats, err := cluster.Run(cluster.Config{Nodes: 4, CoresPerNode: 2},
		func(s *cluster.Session) error {
			g, err := cutcp.Triolet(s, in)
			grid = g
			return err
		})
	if err != nil {
		log.Fatal(err)
	}

	// Print the central z-plane's central row of potentials.
	z, y := dim.D/2, dim.H/2
	fmt.Printf("potential along (z=%d, y=%d):\n", z, y)
	for x := 0; x < dim.W; x++ {
		fmt.Printf("%7.2f", grid[dim.Linear(domain.Ix3{Z: z, Y: y, X: x})])
		if (x+1)%8 == 0 {
			fmt.Println()
		}
	}

	want := cutcp.Seq(in)
	diff := parboil.MaxRelDiff(grid, want, 1e-3)
	fmt.Printf("max relative difference vs sequential kernel: %g (float32 summation order)\n", diff)
	fmt.Printf("fabric: %d messages, %.1f KB (atom slices out, one grid per node back)\n",
		stats.Messages, float64(stats.Bytes)/1024)
}
