// TPACF: the paper's Figure 6 workload — correlation histograms over
// nested, triangular pair loops, the shape that motivates hybrid
// iterators. Runs the observed-vs-random analysis of a synthetic sky
// survey on a virtual cluster and prints the three histograms.
//
//	go run ./examples/tpacf
package main

import (
	"fmt"
	"log"

	"triolet/internal/cluster"
	"triolet/internal/parboil"
	"triolet/internal/parboil/tpacf"
)

func main() {
	const (
		points = 512
		sets   = 16
		bins   = 12
	)
	in := tpacf.Gen(points, sets, bins, 7)
	fmt.Printf("tpacf: %d observed objects vs %d random sets, %d angular bins\n",
		points, sets, bins)

	var res tpacf.Result
	_, err := cluster.Run(cluster.Config{Nodes: 4, CoresPerNode: 2},
		func(s *cluster.Session) error {
			r, err := tpacf.Triolet(s, in)
			res = r
			return err
		})
	if err != nil {
		log.Fatal(err)
	}

	// The standard correlation estimator w(θ) = (DD − 2·DR/S + RR/S) /
	// (RR/S), printed per bin alongside the raw histograms.
	fmt.Println("bin      DD       DRS       RRS     w(theta)")
	s := float64(sets)
	for k := 0; k < bins; k++ {
		rr := float64(res.RRS[k]) / s
		dr := float64(res.DRS[k]) / s
		w := 0.0
		if rr > 0 {
			// DD counts each pair once; DR counts n² cross pairs: halve to
			// match the self-pair convention.
			w = (float64(res.DD[k]) - dr + rr) / rr
		}
		fmt.Printf("%3d %8d %9d %9d   %8.3f\n", k, res.DD[k], res.DRS[k], res.RRS[k], w)
	}

	// Cross-check the distributed run against the sequential kernel.
	want := tpacf.Seq(in)
	if !parboil.EqualInt64(res.DD, want.DD) || !parboil.EqualInt64(res.DRS, want.DRS) ||
		!parboil.EqualInt64(res.RRS, want.RRS) {
		log.Fatal("distributed histograms differ from sequential kernel")
	}
	fmt.Println("histograms match the sequential kernel exactly")
}
