// Matmul: the paper's two-line 2-D block decomposition of matrix multiply
// (§2):
//
//	zipped_AB = outerproduct(rows(A), rows(BT))
//	AB = [dot(u, v) for (u, v) in par(zipped_AB)]
//
// Each block task is sent only the rows of A and Bᵀ spanning its block —
// the data distribution falls out of the outerproduct structure, no
// hand-written partitioning code. This example runs the full sgemm
// pipeline (including the shared-memory parallel transpose) on a virtual
// cluster and checks the result against the sequential kernel.
//
//	go run ./examples/matmul
package main

import (
	"fmt"
	"log"

	"triolet/internal/cluster"
	"triolet/internal/parboil"
	"triolet/internal/parboil/sgemm"
)

func main() {
	in := sgemm.Gen(384, 256, 320, 2024)
	fmt.Printf("C = %.2f * A(%dx%d) * B(%dx%d)\n", in.Alpha, in.A.H, in.A.W, in.B.H, in.B.W)

	want := sgemm.Seq(in)

	var got [](float32)
	stats, err := cluster.Run(cluster.Config{Nodes: 4, CoresPerNode: 2},
		func(s *cluster.Session) error {
			c, err := sgemm.Triolet(s, in)
			got = c.Data
			return err
		})
	if err != nil {
		log.Fatal(err)
	}

	diff := parboil.MaxAbsDiff(got, want.Data)
	fmt.Printf("distributed result matches sequential kernel: max |diff| = %g\n", diff)

	inputBytes := 4 * (len(in.A.Data) + len(in.B.Data))
	fmt.Printf("input %d bytes; fabric moved %d bytes across 4 nodes\n", inputBytes, stats.Bytes)
	fmt.Println("(block slicing ships each node only the rows its output block reads)")

	// The same decomposition in Eden fails when its message buffer cannot
	// hold a block (paper Fig. 5) — see internal/parboil/sgemm's
	// TestEdenFailsOnBufferLimit.
}
