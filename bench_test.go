package triolet

// Benchmarks regenerating the paper's evaluation, one group per table or
// figure, plus ablations for the design choices DESIGN.md calls out. The
// Fig. 3 benches measure the real sequential kernels; the Fig. 4/5/7/8
// benches execute the real distributed implementations on a small virtual
// cluster (this machine cannot hold 128 cores — the paper-scale scaling
// curves come from the calibrated model printed by cmd/triolet-bench and
// asserted in internal/perfmodel's tests).

import (
	"testing"
	"time"

	"triolet/internal/cluster"
	"triolet/internal/core"
	"triolet/internal/domain"
	"triolet/internal/eden"
	"triolet/internal/iter"
	"triolet/internal/mpi"
	"triolet/internal/parboil/cutcp"
	"triolet/internal/parboil/mriq"
	"triolet/internal/parboil/sgemm"
	"triolet/internal/parboil/tpacf"
	"triolet/internal/sched"
	"triolet/internal/serial"
	"triolet/internal/transport"
)

var benchCluster = cluster.Config{Nodes: 4, CoresPerNode: 2}
var benchEden = eden.Config{Processes: 8, ProcsPerNode: 2}

// ------------------------------------------------------------ Figure 1

// BenchmarkFig1Encodings times the same reduction through each virtual
// data structure encoding, substantiating the feature matrix's cost notes
// (in particular that stepper-based nesting is the slow row).
func BenchmarkFig1Encodings(b *testing.B) {
	xs := make([]int64, 1<<14)
	for i := range xs {
		xs[i] = int64(i)
	}
	b.Run("indexer", func(b *testing.B) {
		for b.Loop() {
			sinkI64 = iter.FoldIdx(iter.IdxOf(xs), 0, func(a, v int64) int64 { return a + v })
		}
	})
	b.Run("stepper", func(b *testing.B) {
		for b.Loop() {
			sinkI64 = iter.FoldStep(iter.StepOf(xs), 0, func(a, v int64) int64 { return a + v })
		}
	})
	b.Run("fold", func(b *testing.B) {
		for b.Loop() {
			sinkI64 = iter.ReduceFold(iter.FoldOf(xs), 0, func(a, v int64) int64 { return a + v })
		}
	})
	b.Run("collector", func(b *testing.B) {
		for b.Loop() {
			var acc int64
			iter.IdxToColl(iter.IdxOf(xs))(func(v int64) { acc += v })
			sinkI64 = acc
		}
	})
}

var (
	sinkI64 int64
	sinkF32 float32
	sinkF64 float64
)

// ------------------------------------------------------------ Figure 3

// BenchmarkFig3Sequential measures the sequential kernels whose unit costs
// scale to the paper's Fig. 3 bars (CPU = C-style, Eden-style, Triolet
// iterator pipeline), for all four benchmarks.
func BenchmarkFig3Sequential(b *testing.B) {
	mriqIn := mriq.Gen(512, 512, 1)
	sgemmIn := sgemm.Gen(192, 192, 192, 1)
	tpacfIn := tpacf.Gen(192, 4, 20, 1)
	cutcpIn := cutcp.Gen(256, domain.Dim3{D: 20, H: 20, W: 20}, 0.5, 2.0, 1)

	b.Run("mriq/cpu", func(b *testing.B) {
		for b.Loop() {
			sinkF32 = mriq.Seq(mriqIn)[0].Re
		}
	})
	b.Run("mriq/eden", func(b *testing.B) {
		for b.Loop() {
			sinkF32 = mriq.SeqEden(mriqIn)[0].Re
		}
	})
	b.Run("mriq/triolet", func(b *testing.B) {
		for b.Loop() {
			sinkF32 = mriq.SeqTriolet(mriqIn)[0].Re
		}
	})
	b.Run("sgemm/cpu", func(b *testing.B) {
		for b.Loop() {
			sinkF32 = sgemm.Seq(sgemmIn).Data[0]
		}
	})
	b.Run("sgemm/eden", func(b *testing.B) {
		for b.Loop() {
			sinkF32 = sgemm.SeqEden(sgemmIn).Data[0]
		}
	})
	b.Run("sgemm/triolet", func(b *testing.B) {
		for b.Loop() {
			sinkF32 = sgemm.SeqTriolet(sgemmIn).Data[0]
		}
	})
	b.Run("tpacf/cpu", func(b *testing.B) {
		for b.Loop() {
			sinkI64 = tpacf.Seq(tpacfIn).DD[0]
		}
	})
	b.Run("tpacf/eden", func(b *testing.B) {
		for b.Loop() {
			sinkI64 = tpacf.SeqEden(tpacfIn).DD[0]
		}
	})
	b.Run("tpacf/triolet", func(b *testing.B) {
		for b.Loop() {
			sinkI64 = tpacf.SeqTriolet(tpacfIn).DD[0]
		}
	})
	b.Run("cutcp/cpu", func(b *testing.B) {
		for b.Loop() {
			sinkF32 = cutcp.Seq(cutcpIn)[0]
		}
	})
	b.Run("cutcp/eden", func(b *testing.B) {
		for b.Loop() {
			sinkF32 = cutcp.SeqEden(cutcpIn)[0]
		}
	})
	b.Run("cutcp/triolet", func(b *testing.B) {
		for b.Loop() {
			sinkF32 = cutcp.SeqTriolet(cutcpIn)[0]
		}
	})
}

// ------------------------------------------------- Figures 4, 5, 7, 8

// BenchmarkFig4MRIQ executes the real distributed mri-q implementations on
// a 4-node × 2-core virtual cluster.
func BenchmarkFig4MRIQ(b *testing.B) {
	in := mriq.Gen(2048, 256, 2)
	b.Run("triolet", func(b *testing.B) {
		for b.Loop() {
			_, err := cluster.Run(benchCluster, func(s *cluster.Session) error {
				q, err := mriq.Triolet(s, in)
				sinkF32 = q[0].Re
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("eden", func(b *testing.B) {
		for b.Loop() {
			_, err := eden.Run(benchEden, func(m *eden.Master) error {
				q, err := mriq.Eden(m, in)
				sinkF32 = q[0].Re
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("refc", func(b *testing.B) {
		for b.Loop() {
			q, err := mriq.Ref(benchCluster, in)
			if err != nil {
				b.Fatal(err)
			}
			sinkF32 = q[0].Re
		}
	})
}

// BenchmarkFig5SGEMM executes the real distributed sgemm implementations.
func BenchmarkFig5SGEMM(b *testing.B) {
	in := sgemm.Gen(160, 160, 160, 3)
	b.Run("triolet", func(b *testing.B) {
		for b.Loop() {
			_, err := cluster.Run(benchCluster, func(s *cluster.Session) error {
				c, err := sgemm.Triolet(s, in)
				sinkF32 = c.Data[0]
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("eden", func(b *testing.B) {
		for b.Loop() {
			_, err := eden.Run(benchEden, func(m *eden.Master) error {
				c, err := sgemm.Eden(m, in)
				sinkF32 = c.Data[0]
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("refc", func(b *testing.B) {
		for b.Loop() {
			c, err := sgemm.Ref(benchCluster, in)
			if err != nil {
				b.Fatal(err)
			}
			sinkF32 = c.Data[0]
		}
	})
}

// BenchmarkFig7TPACF executes the real distributed tpacf implementations.
func BenchmarkFig7TPACF(b *testing.B) {
	in := tpacf.Gen(160, 8, 20, 4)
	b.Run("triolet", func(b *testing.B) {
		for b.Loop() {
			_, err := cluster.Run(benchCluster, func(s *cluster.Session) error {
				r, err := tpacf.Triolet(s, in)
				sinkI64 = r.RRS[0]
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("eden", func(b *testing.B) {
		for b.Loop() {
			_, err := eden.Run(benchEden, func(m *eden.Master) error {
				r, err := tpacf.Eden(m, in)
				sinkI64 = r.RRS[0]
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("refc", func(b *testing.B) {
		for b.Loop() {
			r, err := tpacf.Ref(benchCluster, in)
			if err != nil {
				b.Fatal(err)
			}
			sinkI64 = r.RRS[0]
		}
	})
}

// BenchmarkFig8CUTCP executes the real distributed cutcp implementations.
func BenchmarkFig8CUTCP(b *testing.B) {
	in := cutcp.Gen(512, domain.Dim3{D: 16, H: 16, W: 16}, 0.5, 2.0, 5)
	b.Run("triolet", func(b *testing.B) {
		for b.Loop() {
			_, err := cluster.Run(benchCluster, func(s *cluster.Session) error {
				g, err := cutcp.Triolet(s, in)
				sinkF32 = g[0]
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("eden", func(b *testing.B) {
		for b.Loop() {
			_, err := eden.Run(benchEden, func(m *eden.Master) error {
				g, err := cutcp.Eden(m, in)
				sinkF32 = g[0]
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("refc", func(b *testing.B) {
		for b.Loop() {
			g, err := cutcp.Ref(benchCluster, in)
			if err != nil {
				b.Fatal(err)
			}
			sinkF32 = g[0]
		}
	})
}

// ------------------------------------------------------------ Ablations

// BenchmarkAblationNestedLoops compares nested traversal through the
// hybrid iterator (indexer-of-steppers), pure stepper nesting, and the
// hand-written loop nest — the paper's §3.1 claim that stepper nesting is
// 2–5× slower while the hybrid stays near the loop nest.
func BenchmarkAblationNestedLoops(b *testing.B) {
	const n = 512
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i % 37
	}
	b.Run("hybrid-idxnest", func(b *testing.B) {
		for b.Loop() {
			it := iter.ConcatMap(func(x int) iter.Iter[int64] {
				return iter.IdxFlat(iter.Idx[int64]{N: x, At: func(j int) int64 { return int64(j) }})
			}, iter.FromSlice(xs))
			sinkI64 = iter.Sum(it)
		}
	})
	b.Run("stepper-nest", func(b *testing.B) {
		for b.Loop() {
			s := iter.ConcatMapStep(func(x int) iter.Step[int64] {
				return iter.IdxToStep(iter.Idx[int64]{N: x, At: func(j int) int64 { return int64(j) }})
			}, iter.StepOf(xs))
			sinkI64 = iter.FoldStep(s, 0, func(a, v int64) int64 { return a + v })
		}
	})
	b.Run("loop-nest", func(b *testing.B) {
		for b.Loop() {
			var acc int64
			for _, x := range xs {
				for j := 0; j < x; j++ {
					acc += int64(j)
				}
			}
			sinkI64 = acc
		}
	})
}

// BenchmarkAblationSlabVsReplicated compares the paper's cutcp (every node
// computes a full private grid, grids tree-reduced) against the slab-
// decomposed extension (grid partitioned, atoms routed, no reduction) on
// the real virtual cluster.
func BenchmarkAblationSlabVsReplicated(b *testing.B) {
	in := cutcp.Gen(1024, domain.Dim3{D: 24, H: 24, W: 24}, 0.5, 2.0, 7)
	b.Run("replicated-grid", func(b *testing.B) {
		for b.Loop() {
			_, err := cluster.Run(benchCluster, func(s *cluster.Session) error {
				g, err := cutcp.Triolet(s, in)
				sinkF32 = g[0]
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("slab-decomposed", func(b *testing.B) {
		for b.Loop() {
			_, err := cluster.Run(benchCluster, func(s *cluster.Session) error {
				g, err := cutcp.TrioletSlab(s, in)
				sinkF32 = g[0]
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBoxedList compares Eden's boxed cons-list traversal
// with the unboxed slice the high-performance style uses — the order-of-
// magnitude gap the paper's §1 attributes to idiomatic Eden.
func BenchmarkAblationBoxedList(b *testing.B) {
	xs := make([]float64, 1<<14)
	for i := range xs {
		xs[i] = float64(i)
	}
	boxed := eden.FromSlice(xs)
	b.Run("boxed-list", func(b *testing.B) {
		for b.Loop() {
			sinkF64 = eden.Foldl(
				eden.Map(func(x float64) float64 { return x * 1.0001 }, boxed),
				0, func(a, v float64) float64 { return a + v })
		}
	})
	b.Run("unboxed-slice", func(b *testing.B) {
		for b.Loop() {
			var acc float64
			for _, x := range xs {
				acc += x * 1.0001
			}
			sinkF64 = acc
		}
	})
}

// BenchmarkAblationIdiomaticEden measures the paper's §1 claim on real
// kernels: the naive list-comprehension style (boxed cons lists for every
// intermediate value) against the optimized unboxed-array style, for the
// mri-q map-reduce and the cutcp float histogram.
func BenchmarkAblationIdiomaticEden(b *testing.B) {
	mriqIn := mriq.Gen(128, 128, 6)
	cutcpIn := cutcp.Gen(128, domain.Dim3{D: 16, H: 16, W: 16}, 0.5, 2.0, 6)
	b.Run("mriq/optimized", func(b *testing.B) {
		for b.Loop() {
			sinkF32 = mriq.SeqEden(mriqIn)[0].Re
		}
	})
	b.Run("mriq/idiomatic-lists", func(b *testing.B) {
		for b.Loop() {
			sinkF32 = mriq.SeqEdenIdiomatic(mriqIn)[0].Re
		}
	})
	b.Run("cutcp/optimized", func(b *testing.B) {
		for b.Loop() {
			sinkF32 = cutcp.SeqEden(cutcpIn)[0]
		}
	})
	b.Run("cutcp/idiomatic-lists", func(b *testing.B) {
		for b.Loop() {
			sinkF32 = cutcp.SeqEdenIdiomatic(cutcpIn)[0]
		}
	})
	tpacfIn := tpacf.Gen(96, 3, 16, 6)
	b.Run("tpacf/optimized", func(b *testing.B) {
		for b.Loop() {
			sinkI64 = tpacf.SeqEden(tpacfIn).DD[0]
		}
	})
	b.Run("tpacf/idiomatic-lists", func(b *testing.B) {
		for b.Loop() {
			sinkI64 = tpacf.SeqEdenIdiomatic(tpacfIn).DD[0]
		}
	})
}

// BenchmarkAblationScanVsFusion compares the conventional multi-pass
// filter implementation (count, prefix-scan offsets, packed write, then
// sum — paper §3.1's "usual solution") against the fused hybrid pipeline
// on sum-of-filter-of-map.
func BenchmarkAblationScanVsFusion(b *testing.B) {
	pool := sched.NewPool(2)
	defer pool.Close()
	xs := make([]int32, 1<<16)
	for i := range xs {
		xs[i] = int32(i % 1000)
	}
	f := func(x int32) int64 { return int64(x) * 7 }
	pred := func(v int64) bool { return v%3 == 0 }
	b.Run("fused-hybrid", func(b *testing.B) {
		for b.Loop() {
			sinkI64 = core.FilterSumFused(pool, xs, f, pred, 2048)
		}
	})
	b.Run("scan-two-pass", func(b *testing.B) {
		for b.Loop() {
			sinkI64 = core.FilterSumTwoPass(pool, xs, f, pred, 2048)
		}
	})
}

// sliceVsWholeOp ships either a slice per node or the whole array per node,
// isolating the value of separating data distribution from work
// distribution (paper §3.5).
var sliceVsWholeOp = core.NewMapReduce(
	"bench.slicevswhole",
	serial.F64s(),
	serial.Unit(),
	serial.F64C(),
	func(n *cluster.Node, xs []float64, _ struct{}) (float64, error) {
		var acc float64
		for _, x := range xs {
			acc += x
		}
		return acc, nil
	},
	func(a, b float64) float64 { return a + b },
)

// BenchmarkAblationSlicing compares sliced distribution against whole-
// input-per-node distribution at identical compute cost.
func BenchmarkAblationSlicing(b *testing.B) {
	xs := make([]float64, 1<<18)
	for i := range xs {
		xs[i] = float64(i)
	}
	b.Run("sliced", func(b *testing.B) {
		for b.Loop() {
			_, err := cluster.Run(benchCluster, func(s *cluster.Session) error {
				v, err := sliceVsWholeOp.Run(s, core.SliceSource(xs), struct{}{})
				sinkF64 = v
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("whole-copy", func(b *testing.B) {
		// Every node receives the full array and reduces only its share's
		// worth of it — Eden-style replication.
		src := core.FuncSource[[]float64]{
			N:       len(xs),
			SliceFn: func(domain.Range) []float64 { return xs },
		}
		for b.Loop() {
			_, err := cluster.Run(benchCluster, func(s *cluster.Session) error {
				v, err := sliceVsWholeOp.Run(s, src, struct{}{})
				sinkF64 = v
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationFlatVsTwoLevel compares Eden's flat skeleton (every
// process talks to the master) with the paper's two-level rewrite.
func BenchmarkAblationFlatVsTwoLevel(b *testing.B) {
	payload := make([]float64, 1<<12)
	tasks := make([][]float64, 64)
	for i := range tasks {
		tasks[i] = payload
	}
	b.Run("flat", func(b *testing.B) {
		for b.Loop() {
			_, err := eden.Run(eden.Config{Processes: 16, ProcsPerNode: 4}, func(m *eden.Master) error {
				_, err := eden.ParMapT(m, "bench.sumvec", serial.F64s(), serial.F64C(), tasks)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("two-level", func(b *testing.B) {
		for b.Loop() {
			_, err := eden.Run(eden.Config{Processes: 16, ProcsPerNode: 4}, func(m *eden.Master) error {
				_, err := eden.TwoLevelParMapT(m, "bench.sumvec", serial.F64s(), serial.F64C(), tasks)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFusedReductions measures the two-source reduction pipelines the
// fused kernels in iter/fuse.go accelerate — zipWith-sum and the
// Pair-routed dot product — against the hand-written loop they chase. The
// remaining gap is the one indirect user-function call per element that
// opaque closures cost in Go (see DESIGN.md §11); the bench gate holds the
// ratio, this group makes the absolute numbers visible in CI logs.
func BenchmarkFusedReductions(b *testing.B) {
	n := 1 << 15
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i%911) * 0.5
		ys[i] = float64(i%613) * 0.25
	}
	b.Run("zipwith-sum", func(b *testing.B) {
		it := iter.ZipWith(func(x, y float64) float64 { return x * y },
			iter.FromSlice(xs), iter.FromSlice(ys))
		for b.Loop() {
			sinkF64 = iter.Sum(it)
		}
	})
	b.Run("dot-product", func(b *testing.B) {
		it := iter.Map(func(p iter.Pair[float64, float64]) float64 { return p.Fst * p.Snd },
			iter.Zip(iter.FromSlice(xs), iter.FromSlice(ys)))
		for b.Loop() {
			sinkF64 = iter.Sum(it)
		}
	})
	b.Run("loop", func(b *testing.B) {
		for b.Loop() {
			var acc float64
			for i := range xs {
				acc += xs[i] * ys[i]
			}
			sinkF64 = acc
		}
	})
}

// BenchmarkFarmFrameCoalescing measures the farm control-plane wire path —
// bursts of worker heartbeats punctuated by small result sends — with the
// reliable layer's coalescing on and off. Coalescing batches the beats
// into one CRC-framed container (and drops their acks entirely), roughly
// halving bytes and cutting messages ~6x; the msg-gate asserts the byte
// reduction, this bench tracks the time cost per batch.
func BenchmarkFarmFrameCoalescing(b *testing.B) {
	run := func(b *testing.B, disable bool) {
		f := transport.New(transport.Config{Ranks: 2})
		defer f.Close()
		cfg := mpi.ReliableConfig{
			AckTimeout:      time.Second,
			CoalesceLimit:   8,
			DisableCoalesce: disable,
		}
		worker := mpi.NewReliableComm(f, 0, cfg)
		master := mpi.NewReliableComm(f, 1, cfg)
		result := make([]byte, 24)
		stop := make(chan struct{})
		errc := make(chan error, 1)
		go func() {
			for {
				select {
				case <-stop:
					errc <- nil
					return
				default:
				}
				for i := 0; i < 8; i++ {
					if err := worker.SendBeat(1, 7, nil); err != nil {
						errc <- err
						return
					}
				}
				if err := worker.Send(1, 9, result); err != nil {
					errc <- err
					return
				}
			}
		}()
		for b.Loop() {
			if _, err := master.Recv(0, 9); err != nil {
				b.Fatal(err)
			}
			for {
				if _, ok, err := master.TryRecv(0, 7); err != nil {
					b.Fatal(err)
				} else if !ok {
					break
				}
			}
		}
		close(stop)
		// The worker may be blocked in a Send; keep pumping acks until it
		// observes stop and exits.
		for {
			select {
			case err := <-errc:
				if err != nil {
					b.Fatal(err)
				}
				return
			default:
				if _, _, err := master.TryRecv(0, 9); err != nil {
					b.Fatal(err)
				}
				if _, _, err := master.TryRecv(0, 7); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("coalesced", func(b *testing.B) { run(b, false) })
	b.Run("legacy", func(b *testing.B) { run(b, true) })
}

func init() {
	eden.RegisterProcess("bench.sumvec", func(_ *eden.Proc, in []byte) ([]byte, error) {
		xs, err := serial.Unmarshal(serial.F64s(), in)
		if err != nil {
			return nil, err
		}
		var acc float64
		for _, x := range xs {
			acc += x
		}
		return serial.Marshal(serial.F64C(), acc), nil
	})
}
