#!/usr/bin/env sh
# Chaos-campaign gate: the multi-tenant job service's acceptance scenario,
# run twice — once as the -race test gate (TestChaosCampaignGate: 8
# concurrent jobs, one poison-heavy, 2% drop/dup/corrupt fabric, the master
# killed twice mid-flight and resumed bit-identically from the WAL with no
# task re-executed, fairness and admission probes), then once through the
# triolet-bench -campaign command so the operator-facing entry point stays
# wired to the same gates. Sizes are overridable for the nightly full-size
# run: CAMPAIGN_JOBS, CAMPAIGN_TASKS, CAMPAIGN_KILLS.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
cd "$ROOT"

echo "chaos-campaign: race-detector gate test"
go test -race -count=1 -timeout 10m -run 'ChaosCampaign|Campaign' ./internal/jobs/

echo "chaos-campaign: triolet-bench -campaign"
go run ./cmd/triolet-bench -campaign \
    -campaign-jobs "${CAMPAIGN_JOBS:-8}" \
    -campaign-tasks "${CAMPAIGN_TASKS:-12}" \
    -campaign-kills "${CAMPAIGN_KILLS:-2}"

echo "chaos-campaign: pass"
