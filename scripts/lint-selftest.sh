#!/usr/bin/env sh
# Lint-gate selftest: prove cmd/triolet-lint still catches each contract
# violation it exists to catch. For every analyzer, one minimal violation is
# injected into a scratch copy of the repo and the gate is required to fail
# naming that analyzer; a clean pass over the unmodified copy is required
# first. A silently broken analyzer therefore fails CI even though the repo
# itself lints clean.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT INT TERM

echo "lint-selftest: building triolet-lint"
(cd "$ROOT" && go build -o "$TMP/triolet-lint" ./cmd/triolet-lint)

REPO="$TMP/repo"
mkdir "$REPO"
(cd "$ROOT" && tar -cf - --exclude .git .) | (cd "$REPO" && tar -xf -)

lint() { (cd "$REPO" && "$TMP/triolet-lint" ./...); }

echo "lint-selftest: clean copy must pass"
if ! lint >"$TMP/out" 2>&1; then
    echo "lint-selftest: FAIL — clean tree did not lint clean:" >&2
    cat "$TMP/out" >&2
    exit 1
fi

# expect_fail <analyzer> <injected-file>: with the file in place, the gate
# must exit nonzero and the findings must name the analyzer.
expect_fail() {
    analyzer=$1
    file=$2
    if lint >"$TMP/out" 2>&1; then
        echo "lint-selftest: FAIL — $analyzer did not flag $file" >&2
        exit 1
    fi
    if ! grep -q " $analyzer: " "$TMP/out"; then
        echo "lint-selftest: FAIL — gate failed on $file but not via $analyzer:" >&2
        cat "$TMP/out" >&2
        exit 1
    fi
    rm "$REPO/$file"
    echo "lint-selftest: $analyzer ok"
}

# fabrictime: wall-clock read in a clock-injected package.
cat >"$REPO/internal/mpi/zz_lintcheck.go" <<'EOF'
package mpi

import "time"

func zzLintCheckFabricTime() time.Time { return time.Now() }
EOF
expect_fail fabrictime internal/mpi/zz_lintcheck.go

# kernelpure: a farm kernel writing a captured outer variable.
cat >"$REPO/internal/cluster/zz_lintcheck.go" <<'EOF'
package cluster

func zzLintCheckKernelPure() {
	counter := 0
	RegisterFarm("zz.lintcheck", func(n *Node, task []byte) ([]byte, error) {
		counter++
		return task, nil
	})
	_ = counter
}
EOF
expect_fail kernelpure internal/cluster/zz_lintcheck.go

# sharedalias: buffer written after being relinquished to the wire.
cat >"$REPO/internal/cluster/zz_lintcheck.go" <<'EOF'
package cluster

import "triolet/internal/transport"

func zzLintCheckSharedAlias(ep *transport.Endpoint, buf []byte) error {
	err := ep.SendShared(1, 1, buf)
	buf[0] = 0
	return err
}
EOF
expect_fail sharedalias internal/cluster/zz_lintcheck.go

# floatdet: nondeterministic float accumulation loop in a distributed path.
cat >"$REPO/internal/cluster/zz_lintcheck.go" <<'EOF'
package cluster

func zzLintCheckFloatDet(vs []float64) float64 {
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s
}
EOF
expect_fail floatdet internal/cluster/zz_lintcheck.go

# tagdup: two tag constants sharing a value.
cat >"$REPO/internal/mpi/zz_lintcheck.go" <<'EOF'
package mpi

const (
	zzTagLintA = 77777
	zzTagLintB = 77777
)
EOF
expect_fail tagdup internal/mpi/zz_lintcheck.go

echo "lint-selftest: restored copy must pass again"
if ! lint >"$TMP/out" 2>&1; then
    echo "lint-selftest: FAIL — tree did not lint clean after removals:" >&2
    cat "$TMP/out" >&2
    exit 1
fi

echo "lint-selftest: all 5 analyzers catch their injected violation"
