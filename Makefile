# Development entry points; CI (.github/workflows/ci.yml) runs the same
# commands.

GO ?= go

.PHONY: build test race chaos chaos-resume chaos-campaign fuzz fuzz-wal \
	bench bench-baseline alloc-gate msg-gate msg-baseline diffcheck-gate \
	diffcheck-soak autopar-gate lint lint-selftest vet all

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./internal/...

# The fault-injection suites, run fresh (no test cache) with a deadline:
# the failure mode they exist to catch is a hang.
chaos:
	$(GO) test -count=1 -timeout 5m \
		-run 'Fault|Reliable|Chaos|Crash|Farm' \
		./internal/transport/ ./internal/mpi/ ./internal/cluster/ \
		./internal/parboil/sgemm/ ./internal/parboil/tpacf/

# The checkpoint/resume suites under -race: a master killed mid-farm, the
# WAL reopened by a fresh session, results bit-identical to an undisturbed
# run — plus the cancellation-latency tests they depend on.
chaos-resume:
	$(GO) test -race -count=1 -timeout 5m \
		-run 'Resume|Quarantine|Heartbeat|Cancel|Ctx' \
		./internal/cluster/ ./internal/parboil/sgemm/ \
		./internal/transport/ ./internal/mpi/

# The multi-tenant job-service acceptance gate (-race test + the
# triolet-bench -campaign command): concurrent jobs with one poison-heavy
# tenant on a 2%-fault fabric, mid-flight master kills resumed
# bit-identically from the WAL with no task re-executed, bounded-wait
# fairness, and fast typed admission rejection. Size with CAMPAIGN_JOBS /
# CAMPAIGN_TASKS / CAMPAIGN_KILLS (the nightly runs it full-size).
chaos-campaign:
	./scripts/chaos-campaign.sh

# 30-second fuzz smoke over the wire-format decoders.
fuzz:
	$(GO) test -fuzz=FuzzSliceDecoders -fuzztime=30s ./internal/serial

# Fuzz the checkpoint WAL decoder: arbitrary bytes must yield a valid
# prefix, never a panic or a runaway allocation.
fuzz-wal:
	$(GO) test -fuzz=FuzzWALRecords -fuzztime=30s ./internal/checkpoint

# Fused-pipeline regression gate against the checked-in baseline.
bench:
	$(GO) run ./cmd/triolet-bench -bench-gate -baseline BENCH_BASELINE.json

# Re-measure and overwrite the baseline (run on a quiet machine, then
# commit BENCH_BASELINE.json).
bench-baseline:
	$(GO) run ./cmd/triolet-bench -bench-gate -write-baseline BENCH_BASELINE.json

# Steady-state allocation gate: AllocsPerRun proofs over the block
# engine's fast paths and the core skeletons' merge steps (must run
# without -race; the detector instruments allocations).
alloc-gate:
	$(GO) test -count=1 -timeout 5m \
		-run 'ZeroAllocs|Allocs|Arena|Presize' ./internal/iter/ ./internal/core/

# Message-volume regression gate against the checked-in wire baseline.
msg-gate:
	$(GO) run ./cmd/triolet-bench -msg-gate -msg-baseline MSG_BASELINE.json

# Re-measure and overwrite the wire baseline, then commit MSG_BASELINE.json.
msg-baseline:
	$(GO) run ./cmd/triolet-bench -msg-gate -write-msg-baseline MSG_BASELINE.json

# The cross-mode differential oracle's fast subset (ci.yml runs this on
# every push): all four mode axes, seconds of wall time.
diffcheck-gate:
	$(GO) test -count=1 -timeout 5m -run Gate ./internal/diffcheck/

# The nightly deep soak: long random pipeline streams through the full
# mode matrix under -race. Tune with DIFFCHECK_SOAK / DIFFCHECK_SOAK_SEED.
diffcheck-soak:
	DIFFCHECK_SOAK=$${DIFFCHECK_SOAK:-200} $(GO) test -race -count=1 -timeout 60m -v \
		-run Soak ./internal/diffcheck/

# AutoPar acceptance sweep: planner-mapped runs vs the best hand-tuned
# 1-8 node configuration, with online recalibration between runs. CI uses
# a relaxed bound for shared runners (AUTOPAR_BOUND=1.25); the nightly and
# local runs enforce the paper's 10%. AUTOPAR_CALIB persists the snapshot.
autopar-gate:
	$(GO) run ./cmd/triolet-bench -autopar-sweep \
		-autopar-bound $${AUTOPAR_BOUND:-1.10} \
		-autopar-calib "$${AUTOPAR_CALIB:-AUTOPAR_CALIB.json}" -cores 2

# The repo's own analyzer suite: clock-injection, kernel-purity,
# shared-buffer-aliasing, float-determinism, and message-tag contracts
# (DESIGN.md §12). golangci-lint, when installed, adds the generic checks
# on top; triolet-lint is the gate CI enforces (lint-gate job).
lint:
	$(GO) run ./cmd/triolet-lint ./...
	@if command -v golangci-lint >/dev/null 2>&1; then golangci-lint run; fi

# Prove each analyzer still catches an injected violation of its contract.
lint-selftest:
	./scripts/lint-selftest.sh
